"""Shared benchmark fixtures: cached experiment setups + result sink.

Benchmarks print paper-vs-measured tables.  pytest captures stdout, so
every table is also appended to ``benchmarks/results.txt`` and echoed in
the terminal summary; run with ``-s`` to watch tables live.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.experiments.runner import ExperimentSetup, prepare
from repro.experiments.workloads import get_workload

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")

#: Where figure reproductions persist partitions/profiles/frontiers.
BENCH_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
    os.path.dirname(__file__), ".plan-cache"
)

_PLANNER = None


def bench_planner():
    """The benchmark harness's store-backed planner (created lazily).

    Benchmarks warm-start: the first run fills ``benchmarks/.plan-cache``
    (or ``REPRO_CACHE_DIR``), and later runs -- or other bench files
    touching the same workloads -- reuse everything with zero
    re-profiling.  Deliberately *not* the process-wide default planner
    and not an environment default: a plain ``pytest`` run that merely
    collects this directory must leave the unit-test suite hermetic, so
    the store only exists once a benchmark actually plans something.
    """
    global _PLANNER
    if _PLANNER is None:
        from repro.api import Planner

        _PLANNER = Planner(cache=BENCH_CACHE_DIR)
    return _PLANNER

_SETUPS: Dict[str, ExperimentSetup] = {}


def emit(text: str) -> None:
    """Print a table and persist it to the results file."""
    print()
    print(text)
    with open(RESULTS_PATH, "a", encoding="utf-8") as f:
        f.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    if os.path.exists(RESULTS_PATH):
        os.remove(RESULTS_PATH)
    yield


def setup_for(workload_key: str, **kwargs) -> ExperimentSetup:
    """Session-cached experiment setup (frontier computed once, and
    persisted in the benchmark plan store across runs)."""
    key = f"{workload_key}|{sorted(kwargs.items())}"
    if key not in _SETUPS:
        _SETUPS[key] = prepare(get_workload(workload_key),
                               planner=bench_planner(), **kwargs)
    return _SETUPS[key]


@pytest.fixture(scope="session")
def a100_setups():
    """All five A100 PP4 workloads (Table 10), scaled microbatches."""
    from repro.experiments.workloads import A100_PP4_WORKLOADS

    return {wl.key: setup_for(wl.key) for wl in A100_PP4_WORKLOADS}


@pytest.fixture(scope="session")
def a40_setups():
    """All five A40 PP8 workloads (Table 9), scaled microbatches."""
    from repro.experiments.workloads import A40_PP8_WORKLOADS

    return {wl.key: setup_for(wl.key) for wl in A40_PP8_WORKLOADS}
