"""Replica-fleet benchmark: cold-herd scaling and crash takeover.

Boots real ``python -m repro serve`` subprocess fleets over one shared
:class:`~repro.core.store.PlanStore` and drives them through the
scenarios the replica layer exists for:

* ``cold-herd``   -- K concurrent cold requests over U unique specs
  against a 1-daemon baseline and an N-replica fleet, each on a fresh
  store.  Acceptance: the fleet does exactly U expensive profile runs
  *fleet-wide* (summed from every replica's ``/metrics``
  ``repro_planner_work_total`` counters -- the store-level single
  flight at work), beats the single daemon on cold-herd p95 (the
  leaders really profile in parallel across processes instead of
  time-slicing one GIL), and every response is bit-identical to
  in-process planning.
* ``leader-kill`` -- the sticky leader is SIGKILLed *mid-
  materialization* (a chaos env stalls it inside the expensive stage;
  the kill triggers on its lease claim appearing).  The client fails
  over, the surviving replica seizes the stale lease, and the answer
  is still bit-identical.

Results land in ``benchmarks/BENCH_replicas.json``.  ``--quick``
shrinks K/U for CI and ``--ceiling-s`` enforces a wall-clock ceiling.

Run directly::

    python benchmarks/bench_replicas.py                      # full
    python benchmarks/bench_replicas.py --quick --ceiling-s 120  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if __name__ == "__main__":  # runnable without installing the package
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
RESULT_PATH = os.path.join(_BENCH_DIR, "BENCH_replicas.json")
QUICK_RESULT_PATH = os.path.join(_BENCH_DIR, "BENCH_replicas.quick.json")

_WORK_RE = re.compile(
    r'^repro_planner_work_total\{stage="(\w+)"\} (\d+)$', re.MULTILINE)
_STORE_ROLE_RE = re.compile(
    r'^repro_service_store_flights_total\{outcome="(\w+)"\} (\d+)$',
    re.MULTILINE)


def _unique_specs(quick: bool):
    from repro.api import PlanSpec

    base = dict(gpu="a100", stages=2, microbatches=2, freq_stride=24)
    specs = [
        PlanSpec("gpt3-xl", **base),
        PlanSpec("bert-large", **base),
    ]
    if not quick:
        specs.append(PlanSpec("t5-large", **base))
        specs.append(PlanSpec("gpt3-xl", gpu="a100", stages=4,
                              microbatches=4, freq_stride=24))
    return specs


def _spread_tenants(count: int, clients: int):
    """Tenant names whose sticky routes cover every replica evenly."""
    from repro.service import sticky_index

    by_replica = {i: [] for i in range(count)}
    i = 0
    while any(len(names) < clients for names in by_replica.values()):
        name = f"tenant-{i}"
        by_replica[sticky_index(name, count)].append(name)
        i += 1
    return [by_replica[i % count][i // count] for i in range(clients)]


def _fleet_work(metrics_by_url, stage: str) -> int:
    total = 0
    for text in metrics_by_url.values():
        for found, count in _WORK_RE.findall(text):
            if found == stage:
                total += int(count)
    return total


def _fleet_store_roles(metrics_by_url) -> dict:
    roles = {}
    for text in metrics_by_url.values():
        for role, count in _STORE_ROLE_RE.findall(text):
            roles[role] = roles.get(role, 0) + int(count)
    return roles


def _latency_summary(latencies) -> dict:
    xs = sorted(latencies)
    return {
        "p50_s": round(xs[len(xs) // 2], 4),
        "p95_s": round(xs[min(len(xs) - 1, int(0.95 * len(xs)))], 4),
        "max_s": round(xs[-1], 4),
    }


def _fire_herd(fleet, specs, clients: int):
    """K clients through failover ``ReplicaClient``s, barrier-released."""
    tenants = _spread_tenants(len(fleet.daemons), clients)
    barrier = threading.Barrier(clients)
    latencies = [None] * clients
    reports = [None] * clients
    errors = []

    def worker(i: int) -> None:
        client = fleet.client(tenant=tenants[i])
        spec = specs[i % len(specs)]
        barrier.wait()
        started = time.perf_counter()
        try:
            reports[i] = client.plan(spec)
        except Exception as exc:
            errors.append(f"client {i}: {type(exc).__name__}: {exc}")
        latencies[i] = time.perf_counter() - started

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600.0)
    return latencies, reports, errors


def _bench_cold_herd(quick: bool, replicas: int, workdir: str) -> dict:
    from repro.api import Planner
    from repro.service import ReplicaSet, reports_equal

    specs = _unique_specs(quick)
    clients = 8 if quick else 16
    unique = len(specs)
    store = os.path.join(workdir, f"store-{replicas}x")
    with ReplicaSet(replicas, store, lease_timeout_s=10.0,
                    extra_args=["--max-inflight", str(clients)]) as fleet:
        latencies, reports, errors = _fire_herd(fleet, specs, clients)
        assert not errors, errors
        metrics = fleet.client().fleet_metrics()
        assert len(metrics) == replicas

    reference = Planner()
    identical = all(
        reports_equal(report, reference.plan(specs[i % unique]))
        for i, report in enumerate(reports)
    )
    return {
        "replicas": replicas,
        "clients": clients,
        "unique_specs": unique,
        "profile_runs_fleet_wide": _fleet_work(metrics, "profile"),
        "frontier_runs_fleet_wide": _fleet_work(metrics, "frontier"),
        "store_roles": _fleet_store_roles(metrics),
        "bit_identical": identical,
        "cold_latency": _latency_summary(latencies),
    }


def _bench_leader_kill(quick: bool, workdir: str) -> dict:
    from repro.api import Planner
    from repro.service import (
        ReplicaSet,
        ServiceClient,
        StoreFlight,
        reports_equal,
        sticky_index,
    )
    from repro.service.replica import MATERIALIZE_DELAY_ENV

    spec = _unique_specs(True)[0]
    tenant = next(f"tenant-{i}" for i in range(10_000)
                  if sticky_index(f"tenant-{i}", 2) == 0)
    store = os.path.join(workdir, "store-kill")
    started = time.perf_counter()
    with ReplicaSet(
        2, store, lease_timeout_s=1.0,
        per_daemon_env={0: {MATERIALIZE_DELAY_ENV: "30.0"}},
    ) as fleet:
        client = fleet.client(tenant=tenant, cooldown_s=0.2)
        out = {}

        def work():
            out["report"] = client.plan(spec)

        t = threading.Thread(target=work, daemon=True)
        t.start()
        # The doomed leader's lease claim appearing IS the
        # "mid-materialization" signal: kill lands inside the window.
        observer = StoreFlight(store, owner="bench-observer")
        deadline = time.monotonic() + 120.0
        victim_pid = fleet.daemons[0].pid
        while not any(payload.get("pid") == victim_pid
                      for payload in observer.claims().values()):
            if time.monotonic() > deadline:
                raise AssertionError("leader never claimed its lease")
            time.sleep(0.02)
        kill_at = time.perf_counter()
        fleet.daemons[0].kill()
        t.join(timeout=240.0)
        recovery_s = time.perf_counter() - kill_at
        assert "report" in out, "failover plan never completed"
        survivor_text = ServiceClient(fleet.daemons[1].url).metrics_text()

    roles = _fleet_store_roles({"survivor": survivor_text})
    identical = reports_equal(out["report"], Planner().plan(spec))
    return {
        "lease_timeout_s": 1.0,
        "recovered": True,
        "bit_identical": identical,
        "takeovers": roles.get("takeover", 0),
        "failovers": client.stats["failovers"],
        "recovery_s": round(recovery_s, 3),
        "wall_s": round(time.perf_counter() - started, 2),
    }


def run(quick: bool = False) -> dict:
    started = time.perf_counter()
    replicas = 2
    workdir = tempfile.mkdtemp(prefix="bench-replicas-")
    try:
        single = _bench_cold_herd(quick, 1, workdir)
        print(f"cold-herd  : 1 replica, {single['clients']} clients over "
              f"{single['unique_specs']} specs -> "
              f"{single['profile_runs_fleet_wide']} profiles, "
              f"p95={single['cold_latency']['p95_s']}s", flush=True)
        fleet = _bench_cold_herd(quick, replicas, workdir)
        print(f"cold-herd  : {replicas} replicas, {fleet['clients']} clients "
              f"over {fleet['unique_specs']} specs -> "
              f"{fleet['profile_runs_fleet_wide']} profiles fleet-wide, "
              f"p95={fleet['cold_latency']['p95_s']}s "
              f"(roles {fleet['store_roles']})", flush=True)
        kill = _bench_leader_kill(quick, workdir)
        print(f"leader-kill: recovered in {kill['recovery_s']}s via "
              f"{kill['takeovers']} lease takeover(s), "
              f"bit_identical={kill['bit_identical']}", flush=True)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    doc = {
        "benchmark": "replica-fleet",
        "mode": "quick" if quick else "full",
        "cores": os.cpu_count() or 1,
        "single_daemon": single,
        "replica_fleet": fleet,
        "leader_kill": kill,
        "p95_speedup": round(
            single["cold_latency"]["p95_s"]
            / max(fleet["cold_latency"]["p95_s"], 1e-9), 3),
        "wall_s": round(time.perf_counter() - started, 2),
    }
    _check_acceptance(doc)
    path = QUICK_RESULT_PATH if quick else RESULT_PATH
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2)
        fp.write("\n")
    print(f"wrote {path}")
    return doc


def _check_acceptance(doc: dict) -> None:
    """The issue's acceptance bar, enforced on every run."""
    fleet = doc["replica_fleet"]
    single = doc["single_daemon"]
    if fleet["profile_runs_fleet_wide"] != fleet["unique_specs"]:
        raise AssertionError(
            f"{fleet['clients']} cold requests over "
            f"{fleet['unique_specs']} specs across "
            f"{fleet['replicas']} processes ran "
            f"{fleet['profile_runs_fleet_wide']} profiles; the store "
            f"flight must make that exactly {fleet['unique_specs']}"
        )
    roles = fleet["store_roles"]
    if roles.get("leader", 0) + roles.get("takeover", 0) \
            != fleet["unique_specs"]:
        raise AssertionError(f"expected {fleet['unique_specs']} store "
                             f"leaders fleet-wide, got {roles}")
    if not (fleet["bit_identical"] and single["bit_identical"]):
        raise AssertionError("fleet reports are not bit-identical to "
                             "in-process planning")
    # The speedup clause needs hardware parallelism: two CPU-bound
    # daemon processes cannot beat one on a single-core host, where the
    # fleet's value is crash isolation (the leader-kill scenario).
    # There the bar is bounded coordination overhead instead.
    fleet_p95 = fleet["cold_latency"]["p95_s"]
    single_p95 = single["cold_latency"]["p95_s"]
    # Quick mode is a smoke: its workload is too small for the
    # parallelism to dominate startup noise, so only the full run
    # enforces the strict speedup.
    if doc["cores"] >= 2 and doc["mode"] == "full":
        if fleet_p95 >= single_p95:
            raise AssertionError(
                f"{fleet['replicas']} replicas did not beat one daemon "
                f"on cold-herd p95: {fleet_p95}s vs {single_p95}s"
            )
    elif fleet_p95 > single_p95 * 1.5:
        raise AssertionError(
            f"cross-process coordination overhead out of bounds on a "
            f"single-core host: fleet p95 {fleet_p95}s vs single "
            f"{single_p95}s"
        )
    kill = doc["leader_kill"]
    if not (kill["recovered"] and kill["bit_identical"]
            and kill["takeovers"] >= 1):
        raise AssertionError(f"leader-kill scenario failed: {kill}")


def test_replicas_quick():
    """Pytest harness entry: quick scenarios with a lax ceiling."""
    started = time.perf_counter()
    run(quick=True)
    assert time.perf_counter() - started < 300.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced client/spec counts (CI smoke)")
    parser.add_argument("--ceiling-s", type=float, default=None,
                        help="fail if the whole benchmark exceeds this")
    args = parser.parse_args(argv)
    started = time.perf_counter()
    run(quick=args.quick)
    elapsed = time.perf_counter() - started
    print(f"total {elapsed:.1f}s")
    if args.ceiling_s is not None and elapsed > args.ceiling_s:
        print(f"FAIL: exceeded {args.ceiling_s}s ceiling", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
