"""Figures 12 & 13 (Appendix H): frontiers for the remaining workloads.

BERT, T5, Bloom and Wide-ResNet on both testbeds (A40 PP8 = Figure 12,
A100 PP4 = Figure 13).  Checks the same dominance claim as Figure 9 plus
frontier sanity (monotone tradeoff, sensible span).
"""

from __future__ import annotations

from conftest import emit, setup_for

from repro.baselines.zeus_global import zeus_global_frontier
from repro.baselines.zeus_perstage import zeus_per_stage_frontier
from repro.experiments.report import format_table
from repro.sim.executor import execute_frequency_plan

FIG13_A100 = [
    "bert-1.3b@a100-pp4", "t5-3b@a100-pp4", "bloom-3b@a100-pp4",
    "wresnet-1.5b@a100-pp4",
]
FIG12_A40 = [
    "bert-1.3b@a40-pp8", "t5-3b@a40-pp8", "bloom-3b@a40-pp8",
    "wresnet-1.5b@a40-pp8",
]


def _summary_row(setup):
    frontier = setup.optimizer.frontier
    zg = zeus_global_frontier(setup.dag, setup.profile, freq_stride=4)
    zp = zeus_per_stage_frontier(setup.dag, setup.profile, freq_stride=4)
    # energy at the max-frequency iteration time, per method
    t0 = frontier.t_min
    ours = execute_frequency_plan(
        setup.dag, frontier.schedule_for(t0 * 1.0001).frequencies,
        setup.profile,
    ).total_energy()
    zg_best = min(
        (p.total_energy(sync_time=max(p.iteration_time, t0))
         for p in zg if p.iteration_time <= t0 * 1.001),
        default=float("nan"),
    )
    zp_best = min(
        (p.total_energy(sync_time=max(p.iteration_time, t0))
         for p in zp if p.iteration_time <= t0 * 1.001),
        default=float("nan"),
    )
    def fmt(value):
        # ZeusPerStage often cannot reach T_min at all: balancing forward
        # times slows the critical backwards (the §4.1/Appendix-H effect).
        return "n/a" if value != value else f"{value:.0f}"

    return [
        setup.workload.display,
        f"{frontier.t_min:.2f}-{frontier.t_star:.2f}s",
        len(frontier.points), f"{ours:.0f}", fmt(zg_best), fmt(zp_best),
    ]


def _check(setup):
    frontier = setup.optimizer.frontier
    times = [p.iteration_time for p in frontier.points]
    effs = [p.effective_energy for p in frontier.points]
    assert times == sorted(times)
    assert all(a > b for a, b in zip(effs, effs[1:]))
    for bp in zeus_global_frontier(setup.dag, setup.profile, freq_stride=4):
        sched = frontier.schedule_for(bp.iteration_time * 1.0001)
        ours = execute_frequency_plan(setup.dag, sched.frequencies,
                                      setup.profile)
        sync = max(ours.iteration_time, bp.iteration_time)
        assert ours.total_energy(sync_time=sync) <= (
            bp.total_energy(sync_time=sync) * 1.03
        )


def _bench(benchmark, keys, title):
    def run():
        return [_summary_row(setup_for(key)) for key in keys]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["workload", "frontier span", "# points", "Perseus J @Tmin",
         "ZeusGlobal J", "ZeusPerStage J"],
        rows, title=title,
    ))
    for key in keys:
        _check(setup_for(key))


def test_fig13_a100_pp4_frontiers(benchmark):
    _bench(benchmark, FIG13_A100,
           "[Figure 13] A100 PP4 frontiers (appendix workloads)")


def test_fig12_a40_pp8_frontiers(benchmark):
    _bench(benchmark, FIG12_A40,
           "[Figure 12] A40 PP8 frontiers (appendix workloads)")
