"""Ablations of the design choices DESIGN.md calls out.

Not from the paper's evaluation section, but each isolates one design
decision of the reproduction: planning granularity ``tau``, the
minimum-imbalance partitioner, Eq. 4's blocking-displacement term in the
cut capacities, and the cross-GPU claim of §6.2.1 (newer GPUs save more).
"""

from __future__ import annotations

import dataclasses

from conftest import emit, setup_for

from repro.core.frontier import characterize_frontier
from repro.experiments.report import format_table
from repro.experiments.workloads import A100_PP4_WORKLOADS
from repro.gpu.specs import A100_PCIE, H100_SXM, V100_SXM, get_gpu
from repro.models.registry import build_model
from repro.partition.algorithms import partition_model, partition_model_uniform
from repro.pipeline.dag import build_pipeline_dag
from repro.pipeline.schedules import schedule_1f1b
from repro.profiler.online import profile_pipeline
from repro.sim.executor import execute_frequency_plan, max_frequency_plan


def _tmin_savings(dag, profile, frontier):
    base = execute_frequency_plan(dag, max_frequency_plan(dag, profile), profile)
    perseus = execute_frequency_plan(
        dag, frontier.schedule_for(None).frequencies, profile
    )
    return (
        100.0 * (1.0 - perseus.total_energy() / base.total_energy()),
        perseus.total_energy(),
        100.0 * (perseus.iteration_time / base.iteration_time - 1.0),
    )


def test_ablation_tau_granularity(benchmark):
    """Coarser tau: fewer frontier points, faster optimizer, ~same savings."""
    setup = setup_for(A100_PP4_WORKLOADS[0].key)

    def run():
        rows = []
        for factor in (0.5, 1.0, 4.0, 16.0):
            tau = setup.tau * factor
            frontier = characterize_frontier(setup.dag, setup.profile, tau=tau)
            savings, _, slow = _tmin_savings(setup.dag, setup.profile, frontier)
            rows.append([
                f"{tau * 1e3:.1f} ms", len(frontier.points), frontier.steps,
                f"{frontier.optimizer_runtime_s:.2f}", f"{savings:.1f}",
                f"{slow:.2f}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["tau", "points", "steps", "runtime (s)", "Tmin savings %", "slow %"],
        rows,
        title="[Ablation] Planning granularity tau (GPT-3 1.3B, A100 PP4)",
    ))
    savings = [float(r[4]) for r in rows]
    runtimes = [float(r[3]) for r in rows]
    assert max(savings) - min(savings) < 6.0  # robust to granularity
    assert runtimes[-1] < runtimes[0]  # coarser tau is cheaper


def test_ablation_partitioning(benchmark):
    """Worse partitions create more bloat; better ones less total energy."""
    def run():
        rows = []
        model = build_model("gpt3-xl", 4)
        dag = build_pipeline_dag(schedule_1f1b(4, 12))
        for label, part in (
            ("min-imbalance", partition_model(model, 4, A100_PCIE)),
            ("uniform", partition_model_uniform(model, 4, A100_PCIE)),
        ):
            profile = profile_pipeline(model, part, A100_PCIE, freq_stride=4)
            frontier = characterize_frontier(
                dag, profile, tau=(0.02 * frontier_span_hint(part))
            )
            savings, joules, slow = _tmin_savings(dag, profile, frontier)
            rows.append([label, f"{part.ratio:.2f}", f"{savings:.1f}",
                         f"{joules:.0f}", f"{slow:.2f}"])
        return rows

    def frontier_span_hint(part):
        return max(part.stage_latencies) / max(min(part.stage_latencies), 1e-9)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["partitioner", "imbalance", "Tmin savings %", "Tmin energy (J)",
         "slow %"],
        rows,
        title="[Ablation] Partitioning method (GPT-3 1.3B, A100 PP4, M=12)",
    ))
    best, uniform = rows
    assert float(uniform[1]) >= float(best[1])  # uniform is worse balanced
    assert float(uniform[2]) >= float(best[2]) - 1.0  # more bloat to harvest
    assert float(best[3]) <= float(uniform[3]) * 1.02  # still cheaper overall


def test_ablation_effective_energy_term(benchmark):
    """Eq. 4's -P_blocking*t term vs raw-energy capacities."""
    setup = setup_for(A100_PP4_WORKLOADS[0].key)

    def run():
        rows = []
        for label, p_block in (
            ("Eq. 4 (effective)", setup.profile.p_blocking_w),
            ("raw energy only", 1e-9),
        ):
            profile = dataclasses.replace(setup.profile, p_blocking_w=p_block)
            profile.ops = setup.profile.ops
            frontier = characterize_frontier(setup.dag, profile, tau=setup.tau)
            # account honestly with the TRUE blocking power either way
            savings, joules, slow = _tmin_savings(
                setup.dag, setup.profile, frontier
            )
            rows.append([label, f"{savings:.1f}", f"{joules:.0f}",
                         f"{slow:.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["cut capacities", "Tmin savings %", "Tmin energy (J)", "slow %"],
        rows,
        title="[Ablation] Blocking-displacement term in capacities "
              "(GPT-3 1.3B, A100 PP4)",
    ))
    effective, raw = rows
    assert float(effective[2]) <= float(raw[2]) * 1.01


def test_ablation_cross_gpu(benchmark):
    """§6.2.1: higher-clock-range GPUs show larger relative savings."""
    def run():
        rows = []
        for gpu in (V100_SXM, A100_PCIE, get_gpu("a40"), H100_SXM):
            model = build_model("gpt3-xl", 4)
            part = partition_model(model, 4, gpu)
            profile = profile_pipeline(model, part, gpu, freq_stride=4)
            dag = build_pipeline_dag(schedule_1f1b(4, 12))
            base = execute_frequency_plan(
                dag, max_frequency_plan(dag, profile), profile
            )
            span = base.iteration_time
            frontier = characterize_frontier(dag, profile, tau=span / 250)
            savings, _, slow = _tmin_savings(dag, profile, frontier)
            rows.append([gpu.name, gpu.max_freq, f"{savings:.1f}",
                         f"{slow:.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["GPU", "max clock (MHz)", "Tmin savings %", "slow %"],
        rows,
        title="[Ablation] Cross-GPU intrinsic savings (GPT-3 1.3B, PP4)",
    ))
    by_gpu = {r[0]: float(r[2]) for r in rows}
    assert by_gpu["A40-48G"] > by_gpu["A100-PCIe-80G"]
    assert by_gpu["H100-SXM-80G"] > by_gpu["A100-PCIe-80G"]
