"""Observability overhead: the tracing layer's hot-path contract.

``repro.obs`` instruments the optimizer hot path (``optimize.crawl``
in ``core/frontier.py``) and the planner around it.  The contract is
that *disabled* tracing -- the default -- costs the hot path at most
2% of its wall time.  The mechanism is a single module-flag check
returning a shared no-op context manager, and spans only mark stage
boundaries (one ``optimize.crawl`` span plus a handful of synthetic
stage children per crawl, never inner crawl loops), so the measured
overhead should be orders of magnitude below the ceiling.

Three measurements, one JSON artifact (``benchmarks/BENCH_obs.json``):

* **disabled span() micro-cost** -- per-call nanoseconds of ``with
  span(...)`` while recording is off, against an empty-loop baseline;
* **disabled-mode crawl overhead** -- that per-call cost times the
  number of span sites a real crawl actually hits, as a percentage of
  the crawl's wall time (the enforced <= 2% number: it measures the
  instrumentation's presence, independent of machine jitter);
* **enabled-vs-disabled crawl ratio** -- cold ``characterize_frontier``
  timed with recording off and on (informational: it includes repeat
  jitter), with the two frontiers asserted bit-identical -- recording
  spans must not perturb exact results.

Run directly::

    python benchmarks/bench_obs.py                # full matrix
    python benchmarks/bench_obs.py --quick --ceiling-s 60   # CI smoke

``--quick`` runs reduced step targets and one repeat; ``--ceiling-s``
fails the run if any cold crawl exceeds the wall-clock ceiling.  The
<= 2% disabled-overhead assertion and the bit-identity assertion always
apply.  Also collectable by the pytest benchmark harness.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if __name__ == "__main__":  # runnable without installing the package
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
RESULT_PATH = os.path.join(_BENCH_DIR, "BENCH_obs.json")
QUICK_RESULT_PATH = os.path.join(_BENCH_DIR, "BENCH_obs.quick.json")

#: The enforced contract: disabled tracing may cost the optimizer hot
#: path at most this fraction of its wall time.
DISABLED_OVERHEAD_CEILING_PCT = 2.0

#: (label, build_stack kwargs, quick-mode step target, timing repeats).
#: The headline A100 PP4 workload plus a smaller 2-stage one so the
#: quick mode exercises two crawl shapes.
WORKLOADS = [
    ("gpt3-1.3b@a100-pp4",
     dict(model="gpt3-xl", gpu="a100", stages=4, microbatches=12,
          microbatch_size=4, freq_stride=4), 120, 3),
    ("bert-large@a100-pp2",
     dict(model="bert-large", gpu="a100", stages=2, microbatches=8,
          freq_stride=8), 120, 3),
]


def _frontier_fingerprint(frontier) -> list:
    """Exact (hex-float) frontier content, for bit-identity checks."""
    return [
        [
            p.iteration_time.hex(),
            p.effective_energy.hex(),
            p.compute_energy.hex(),
            sorted((k, v.hex()) for k, v in p.durations.items()),
            sorted(p.frequencies.items()),
        ]
        for p in frontier.points
    ]


def _cold_crawl(stack, tau: float):
    """One cold characterization; returns (frontier, seconds)."""
    from repro.core.frontier import characterize_frontier

    profile = stack.profile
    profile.__dict__.pop("_cost_model_cache", None)
    for op_profile in profile.ops.values():
        op_profile._pareto_cache = None
    started = time.perf_counter()
    frontier = characterize_frontier(stack.dag, profile, tau=tau)
    elapsed = time.perf_counter() - started
    return frontier, elapsed


def measure_disabled_span_ns(iterations: int = 200_000) -> float:
    """Per-call nanoseconds of ``with span(...)`` while disabled.

    An empty loop over the same range is subtracted so the number is
    the instrumentation's marginal cost, not Python loop overhead.
    """
    from repro.obs.trace import span, tracing_enabled

    assert not tracing_enabled()
    r = range(iterations)
    started = time.perf_counter()
    for _ in r:
        pass
    baseline = time.perf_counter() - started
    started = time.perf_counter()
    for _ in r:
        with span("bench.noop", k=1):
            pass
    elapsed = time.perf_counter() - started
    return max(elapsed - baseline, 0.0) / iterations * 1e9


def run(quick: bool = False, only: Optional[List[str]] = None) -> dict:
    """Run the matrix; returns (and writes) the result document."""
    from repro.api import Planner
    from repro.obs.trace import disable_tracing, enable_tracing

    planner = Planner()
    span_ns = measure_disabled_span_ns(50_000 if quick else 200_000)
    print(f"disabled span() micro-cost: {span_ns:.0f} ns/call", flush=True)

    rows = []
    for key, kwargs, quick_steps, repeats in WORKLOADS:
        if only and key not in only:
            continue
        stack = planner.build_stack(
            step_target=quick_steps if quick else 250, **kwargs
        )
        tau = stack.optimizer.tau
        reps = 1 if quick else repeats

        disable_tracing()
        off_frontier, off_s = _cold_crawl(stack, tau)
        for _ in range(reps - 1):
            _, again = _cold_crawl(stack, tau)
            off_s = min(off_s, again)

        recorder = enable_tracing()
        try:
            on_frontier, on_s = _cold_crawl(stack, tau)
            for _ in range(reps - 1):
                _, again = _cold_crawl(stack, tau)
                on_s = min(on_s, again)
            # Spans one crawl actually records = span sites the
            # disabled path pays its flag check at (plus the synthetic
            # stage children, which cost nothing while disabled --
            # counting them anyway only makes the estimate safer).
            recorder.clear()
            _cold_crawl(stack, tau)
            spans_per_crawl = len(recorder.spans)
        finally:
            disable_tracing()

        identical = (_frontier_fingerprint(off_frontier)
                     == _frontier_fingerprint(on_frontier))
        if not identical:
            raise AssertionError(
                f"{key}: frontier diverged with tracing enabled"
            )
        disabled_overhead_pct = (
            spans_per_crawl * span_ns / 1e9 / off_s * 100.0
        )
        if disabled_overhead_pct > DISABLED_OVERHEAD_CEILING_PCT:
            raise AssertionError(
                f"{key}: disabled-mode overhead "
                f"{disabled_overhead_pct:.4f}% exceeds the "
                f"{DISABLED_OVERHEAD_CEILING_PCT}% contract"
            )
        row = {
            "workload": key,
            **{k: v for k, v in kwargs.items() if k != "gpu"},
            "gpu": kwargs["gpu"],
            "tau_s": tau,
            "num_computations": stack.dag.num_computations,
            "points": len(off_frontier.points),
            "crawl_disabled_s": round(off_s, 4),
            "crawl_enabled_s": round(on_s, 4),
            "enabled_vs_disabled_pct": round((on_s / off_s - 1) * 100, 2),
            "spans_per_crawl": spans_per_crawl,
            "disabled_overhead_pct": round(disabled_overhead_pct, 6),
            "bit_identical": identical,
        }
        rows.append(row)
        print(f"{key:24s} crawl off {off_s:7.3f}s  on {on_s:7.3f}s  "
              f"{spans_per_crawl} spans  disabled overhead "
              f"{disabled_overhead_pct:.5f}%  bit-identical", flush=True)

    doc = {
        "benchmark": "obs-overhead",
        "mode": "quick" if quick else "full",
        "contract": (
            f"disabled tracing costs the optimizer hot path <= "
            f"{DISABLED_OVERHEAD_CEILING_PCT}% of its wall time "
            f"(span sites x per-call disabled cost / crawl time), and "
            f"recording spans never perturbs exact frontiers "
            f"(bit-identity asserted)"
        ),
        "disabled_span_ns": round(span_ns, 1),
        "disabled_overhead_ceiling_pct": DISABLED_OVERHEAD_CEILING_PCT,
        "workloads": rows,
        "max_disabled_overhead_pct": round(
            max(r["disabled_overhead_pct"] for r in rows), 6
        ),
    }
    path = QUICK_RESULT_PATH if quick else RESULT_PATH
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2)
        fp.write("\n")
    print(f"wrote {path} (max disabled overhead "
          f"{doc['max_disabled_overhead_pct']}%)")
    return doc


def test_obs_overhead_quick():
    """Pytest harness entry: quick matrix, contract asserted inside."""
    doc = run(quick=True)
    assert doc["max_disabled_overhead_pct"] <= \
        DISABLED_OVERHEAD_CEILING_PCT
    for row in doc["workloads"]:
        assert row["bit_identical"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced step targets, single repeat")
    parser.add_argument("--ceiling-s", type=float, default=None,
                        help="fail if any cold crawl exceeds this")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of workload keys to run")
    args = parser.parse_args(argv)
    doc = run(quick=args.quick, only=args.only)
    if args.ceiling_s is not None:
        over = [r for r in doc["workloads"]
                if r["crawl_disabled_s"] > args.ceiling_s]
        if over:
            print(f"FAIL: {[r['workload'] for r in over]} exceeded "
                  f"{args.ceiling_s}s ceiling", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
