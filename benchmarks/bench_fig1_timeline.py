"""Figure 1 / Figure 10: execution timelines, max-frequency vs Perseus.

Renders the one-iteration timeline of GPT-3 1.3B (N=4, M=6, as drawn in
Figure 1) plus the Appendix-A models, and checks Perseus's schedule keeps
the iteration time while cutting energy -- the figure's visual claim.
"""

from __future__ import annotations

from conftest import emit

from repro.api import PlanSpec, default_planner
from repro.viz import render_comparison

#: (model, figure label) as visualized in Figure 1 / Figure 10.
FIGURE_MODELS = [
    ("gpt3-xl", "Figure 1: GPT-3 1.3B"),
    ("bert-huge", "Figure 10a: BERT 1.3B"),
    ("t5-3b", "Figure 10b: T5 3B"),
    ("bloom-3b", "Figure 10c: Bloom 3B"),
    ("wide-resnet101", "Figure 10d: Wide-ResNet101 1.5B"),
]


def _render(model_name):
    planner = default_planner()
    spec = PlanSpec(model_name, gpu="a100", stages=4, microbatches=6,
                    freq_stride=8)
    base = planner.baseline_execution(spec)
    opt = planner.plan(spec).execution
    return base, opt


def test_fig1_gpt3_timeline(benchmark):
    base, opt = benchmark.pedantic(_render, args=("gpt3-xl",), rounds=1,
                                   iterations=1)
    emit("[Figure 1] GPT-3 1.3B, 4 stages, 6 microbatches (A100)\n"
         + render_comparison(base, opt, width=100))
    # the figure's claim: same iteration time, visibly less energy
    assert opt.iteration_time <= base.iteration_time * 1.001
    assert opt.total_energy() < base.total_energy() * 0.95


def test_fig10_appendix_timelines(benchmark):
    def run():
        out = []
        for name, label in FIGURE_MODELS[1:]:
            base, opt = _render(name)
            out.append((label, base, opt))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, base, opt in results:
        saved = 100 * (1 - opt.total_energy() / base.total_energy())
        emit(f"[{label}] iteration {base.iteration_time:.3f}s -> "
             f"{opt.iteration_time:.3f}s, energy saved {saved:.1f}%\n"
             + render_comparison(base, opt, width=100))
        assert opt.iteration_time <= base.iteration_time * 1.001
        assert opt.total_energy() < base.total_energy()
