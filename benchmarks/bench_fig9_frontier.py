"""Figure 9: iteration time-energy frontiers vs the Zeus baselines.

Three parallelization configurations of GPT-3 as in the paper: (a) PP4 on
A100, (b) PP8 on A40, (c) DP2 x TP2 x PP4 on A40.  Perseus must
Pareto-dominate both ZeusGlobal and ZeusPerStage everywhere.
"""

from __future__ import annotations

from conftest import emit, setup_for

from repro.baselines.zeus_global import zeus_global_frontier
from repro.baselines.zeus_perstage import zeus_per_stage_frontier
from repro.experiments.report import format_table
from repro.sim.executor import execute_frequency_plan

CONFIGS = [
    ("gpt3-1.3b@a100-pp4", "Fig 9a: GPT-3 1.3B, PP4, A100"),
    ("gpt3-2.7b@a40-pp8", "Fig 9b: GPT-3 2.7B, PP8, A40"),
    ("gpt3-6.7b@a40-3d", "Fig 9c: GPT-3 6.7B, DP2xTP2xPP4, A40"),
]


def _frontier_rows(setup, samples=7):
    frontier = setup.optimizer.frontier
    pts = frontier.points
    idxs = [int(i * (len(pts) - 1) / (samples - 1)) for i in range(samples)]
    rows = []
    for i in sorted(set(idxs)):
        p = pts[i]
        realized = execute_frequency_plan(setup.dag, p.frequencies,
                                          setup.profile)
        rows.append(["Perseus", realized.iteration_time,
                     realized.total_energy()])
    for bp in zeus_global_frontier(setup.dag, setup.profile, freq_stride=2):
        rows.append(["ZeusGlobal", bp.iteration_time, bp.total_energy()])
    for bp in zeus_per_stage_frontier(setup.dag, setup.profile, freq_stride=2):
        rows.append(["ZeusPerStage", bp.iteration_time, bp.total_energy()])
    return rows


def _assert_dominance(setup, rows):
    frontier = setup.optimizer.frontier
    for method, t, e in rows:
        if method == "Perseus":
            continue
        sched = frontier.schedule_for(t * 1.0001)
        ours = execute_frequency_plan(setup.dag, sched.frequencies,
                                      setup.profile)
        sync = max(ours.iteration_time, t)
        assert ours.total_energy(sync_time=sync) <= e * 1.03, (
            f"{method} point at t={t:.2f}s beats Perseus"
        )


def _bench_config(benchmark, key, label):
    setup = setup_for(key)
    rows = benchmark.pedantic(_frontier_rows, args=(setup,), rounds=1,
                              iterations=1)
    emit(format_table(
        ["method", "iteration time (s)", "energy (J)"],
        [[m, f"{t:.3f}", f"{e:.0f}"] for m, t, e in rows],
        title=f"[{label}] time-energy frontier points",
    ))
    _assert_dominance(setup, rows)


def test_fig9a_pp4_a100(benchmark):
    _bench_config(benchmark, *CONFIGS[0])


def test_fig9b_pp8_a40(benchmark):
    _bench_config(benchmark, *CONFIGS[1])


def test_fig9c_3d_a40(benchmark):
    _bench_config(benchmark, *CONFIGS[2])
