"""§6.2.3: how much of the §2.4 potential does Perseus realize?

Paper: 74% (A100) and 89% (A40) of the potential savings on average, with
negligible slowdown; potential is fully realized once stragglers slow the
job by ~1.1-1.15x.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments.report import format_table
from repro.experiments.runner import evaluate_realized_potential

PAPER_FRACTION = {"A100": 0.74, "A40": 0.89}


def _run(setups):
    rows = []
    for setup in setups.values():
        rp = evaluate_realized_potential(setup)
        rows.append([rp.workload, rp.potential_pct, rp.realized_pct,
                     100 * rp.fraction])
    return rows


def test_sec623_realized_a100(benchmark, a100_setups):
    rows = benchmark.pedantic(_run, args=(a100_setups,), rounds=1,
                              iterations=1)
    avg = float(np.mean([r[3] for r in rows]))
    emit(format_table(
        ["workload", "potential %", "realized %", "fraction %"],
        rows,
        title=f"[Sec 6.2.3] Realized potential, A100 "
              f"(ours avg {avg:.0f}%, paper 74%)",
    ))
    assert 40.0 < avg <= 110.0


def test_sec623_realized_a40(benchmark, a40_setups):
    rows = benchmark.pedantic(_run, args=(a40_setups,), rounds=1,
                              iterations=1)
    avg = float(np.mean([r[3] for r in rows]))
    emit(format_table(
        ["workload", "potential %", "realized %", "fraction %"],
        rows,
        title=f"[Sec 6.2.3] Realized potential, A40 "
              f"(ours avg {avg:.0f}%, paper 89%)",
    ))
    assert 50.0 < avg <= 115.0


def test_sec623_straggler_fully_realizes(benchmark, a100_setups):
    """With a ~1.1-1.15x straggler, Perseus reaches the full potential."""
    from repro.baselines.static import potential_savings
    from repro.experiments.runner import evaluate_straggler

    def run():
        out = []
        for setup in a100_setups.values():
            pot, _ = potential_savings(setup.dag, setup.profile)
            sav = evaluate_straggler(setup, (1.15,))
            perseus = next(r for r in sav if r.method == "Perseus")
            out.append([setup.workload.display, 100 * pot,
                        perseus.energy_savings_pct])
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["workload", "potential %", "Perseus @ T'/T=1.15 %"],
        rows,
        title="[Sec 6.2.3] Straggler slack realizes the potential (A100)",
    ))
    realized = np.mean([r[2] / r[1] for r in rows])
    assert realized > 0.75
