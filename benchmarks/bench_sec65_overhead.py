"""§6.5: Perseus's own overhead -- profiling time, optimizer runtime, lookup.

Paper: ~13 min one-off profiling on A100 workloads; optimizer averages 6.5
min (peak 15.7 min, Bloom 3B); the largest 8192-GPU emulation took 87 s
(one pipeline suffices, §4.4); schedule lookup is instantaneous.

Our absolute numbers differ (interpreter vs their server; scaled M), but
the *relations* must hold: optimizer runtime is a negligible fraction of
training, emulation optimizes one pipeline only, and lookup is O(log n).
"""

from __future__ import annotations

import time

from conftest import emit, setup_for

from repro.experiments.report import format_table
from repro.experiments.workloads import A100_PP4_WORKLOADS
from repro.profiler.online import estimated_profiling_overhead_s


def test_sec65_optimizer_runtime(benchmark):
    def run():
        rows = []
        for wl in A100_PP4_WORKLOADS:
            setup = setup_for(wl.key)
            frontier = setup.optimizer.frontier  # cached after first bench
            rows.append([
                setup.workload.display,
                f"{frontier.optimizer_runtime_s:.2f}",
                frontier.steps,
                len(frontier.points),
                f"{estimated_profiling_overhead_s(setup.profile) / 60:.1f}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["workload", "optimizer runtime (s)", "steps", "frontier points",
         "profiling overhead (min)"],
        rows,
        title="[Sec 6.5] Optimizer runtime and profiling overhead "
              "(paper: 6.5 min avg optimize, ~13 min profile)",
    ))
    for row in rows:
        assert float(row[1]) < 600.0  # far below any real training horizon


def test_sec65_lookup_is_instant(benchmark):
    setup = setup_for(A100_PP4_WORKLOADS[0].key)
    frontier = setup.optimizer.frontier
    targets = [frontier.t_min * (1 + 0.01 * i) for i in range(50)]

    def lookup():
        for t in targets:
            frontier.schedule_for(t)

    benchmark(lookup)
    start = time.perf_counter()
    for t in targets:
        frontier.schedule_for(t)
    elapsed = (time.perf_counter() - start) / len(targets)
    emit(f"[Sec 6.5] schedule lookup: {elapsed * 1e6:.1f} us per query "
         f"(paper: 'instantaneous')")
    assert elapsed < 1e-3


def test_sec65_polynomial_step_count(benchmark):
    """Appendix F: steps are O(N + M), i.e. linear-ish in pipeline size."""
    from repro.core.frontier import characterize_frontier
    from repro.pipeline.dag import build_pipeline_dag
    from repro.pipeline.schedules import schedule_1f1b

    setup = setup_for(A100_PP4_WORKLOADS[0].key)

    def run():
        rows = []
        for m in (4, 8, 16):
            dag = build_pipeline_dag(schedule_1f1b(4, m))
            frontier = characterize_frontier(dag, setup.profile, tau=setup.tau)
            rows.append([f"N=4, M={m}", frontier.steps,
                         f"{frontier.optimizer_runtime_s:.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["config", "steps", "runtime (s)"],
        rows,
        title="[Appendix F] Frontier steps scale mildly with microbatches",
    ))
    steps = [r[1] for r in rows]
    # quadrupling M must not blow steps up super-linearly by more than ~4x
    assert steps[2] <= steps[0] * 8
