"""Legacy setup shim; all metadata lives in ``pyproject.toml``.

Kept so ancient tooling that insists on ``setup.py`` still resolves the
package; ``pip install -e .`` reads pyproject (which also installs the
``repro`` console script).
"""
from setuptools import setup

setup()
