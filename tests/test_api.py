"""The unified planning API: PlanSpec, strategy registry, Planner, sweep."""

import io
import json
import warnings

import pytest

import repro
from repro.api import (
    PlanSpec,
    Planner,
    default_planner,
    get_strategy,
    list_strategies,
    register_strategy,
    sweep,
)
from repro.api.spec import FIDELITY_STRIDES
from repro.api.strategies import _REGISTRY
from repro.core.serialization import SerializationError, load_json, save_json
from repro.exceptions import ConfigurationError

#: Small/fast planning request reused across the module.
SMALL = PlanSpec("bert-large", gpu="a100", stages=2, microbatches=3,
                 freq_stride=24)

BUILTINS = ["envpipe", "max-freq", "min-energy", "perseus", "zeus-global",
            "zeus-per-stage"]


class TestPlanSpec:
    def test_defaults_validate(self):
        spec = PlanSpec("gpt3-xl")
        assert spec.strategy == "perseus"
        assert spec.effective_freq_stride == FIDELITY_STRIDES["fast"]

    def test_explicit_stride_beats_fidelity(self):
        assert SMALL.effective_freq_stride == 24
        assert PlanSpec("gpt3-xl", fidelity="smoke").effective_freq_stride == 16

    @pytest.mark.parametrize("kwargs", [
        {"model": ""},
        {"model": "gpt3-xl", "gpu": ""},
        {"model": "gpt3-xl", "stages": 0},
        {"model": "gpt3-xl", "microbatches": -1},
        {"model": "gpt3-xl", "tensor_parallel": 0},
        {"model": "gpt3-xl", "microbatch_size": 0},
        {"model": "gpt3-xl", "freq_stride": 0},
        {"model": "gpt3-xl", "tau": 0.0},
        {"model": "gpt3-xl", "tau": -1.0},
        {"model": "gpt3-xl", "strategy": ""},
        {"model": "gpt3-xl", "fidelity": "ludicrous"},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PlanSpec(**kwargs)

    def test_replace_revalidates(self):
        with pytest.raises(ConfigurationError):
            SMALL.replace(stages=0)

    def test_json_round_trip(self):
        restored = PlanSpec.from_json(SMALL.to_json())
        assert restored == SMALL
        assert hash(restored) == hash(SMALL)

    def test_round_trip_through_file_helpers(self):
        buf = io.StringIO()
        save_json(SMALL, buf)
        buf.seek(0)
        assert load_json(buf) == SMALL

    def test_from_dict_rejects_unknown_fields(self):
        payload = SMALL.to_dict()
        payload["warp_factor"] = 9
        with pytest.raises(ConfigurationError):
            PlanSpec.from_dict(payload)

    def test_from_dict_rejects_bad_kind_and_version(self):
        payload = SMALL.to_dict()
        payload["kind"] = "frontier"
        with pytest.raises(ConfigurationError):
            PlanSpec.from_dict(payload)
        payload = SMALL.to_dict()
        payload["version"] = 999
        with pytest.raises(ConfigurationError):
            PlanSpec.from_dict(payload)

    def test_malformed_payload_via_load_json(self):
        bad = dict(SMALL.to_dict(), stages=0)
        with pytest.raises(SerializationError):
            load_json(io.StringIO(json.dumps(bad)))


class TestStrategyRegistry:
    def test_all_six_builtins_listed(self):
        names = list_strategies()
        for builtin in BUILTINS:
            assert builtin in names

    def test_unknown_name_error_lists_registered(self):
        with pytest.raises(ConfigurationError, match="perseus"):
            get_strategy("does-not-exist")

    def test_lookup_returns_named_strategy(self):
        for builtin in BUILTINS:
            assert get_strategy(builtin).name == builtin

    def test_function_registration_and_removal(self):
        @register_strategy("test-all-max")
        def _all_max(ctx):
            from repro.baselines.static import max_frequency_plan

            return max_frequency_plan(ctx.dag, ctx.profile)

        try:
            assert "test-all-max" in list_strategies()
            planner = default_planner()
            ours = planner.plan(SMALL.replace(strategy="test-all-max"))
            theirs = planner.plan(SMALL.replace(strategy="max-freq"))
            assert ours.plan == theirs.plan
        finally:
            _REGISTRY.pop("test-all-max", None)
        assert "test-all-max" not in list_strategies()

    def test_class_without_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            register_strategy("bad")(type("NoPlan", (), {}))
        _REGISTRY.pop("bad", None)


class TestPlannerMemoization:
    def test_sweep_profiles_once_per_unique_stack(self):
        planner = Planner()
        specs = [SMALL.replace(strategy=name) for name in BUILTINS]
        # Same model/gpu/partition at two microbatch counts: still one
        # profile (profiles are microbatch-independent), two DAGs.
        specs += [SMALL.replace(microbatches=4),
                  SMALL.replace(strategy="envpipe", microbatches=4)]
        reports = planner.sweep(specs)
        assert len(reports) == len(specs)
        assert planner.stats["model"] == 1
        assert planner.stats["partition"] == 1
        assert planner.stats["profile"] == 1
        assert planner.stats["dag"] == 2
        assert planner.stats["optimizer"] == 2  # one frontier per DAG

    def test_custom_gpu_spec_not_confused_with_registry_name(self):
        import dataclasses

        from repro.gpu.specs import A100_PCIE

        derated = dataclasses.replace(A100_PCIE, tdp_w=250.0)
        planner = Planner()
        stock = planner.build_stack("bert-large", gpu=A100_PCIE, stages=2,
                                    microbatches=2, freq_stride=24)
        custom = planner.build_stack("bert-large", gpu=derated, stages=2,
                                     microbatches=2, freq_stride=24)
        assert planner.stats["profile"] == 2
        assert stock.profile is not custom.profile

    def test_clear_drops_memoized_stages(self):
        planner = Planner()
        planner.plan(SMALL)
        planner.clear()
        planner.plan(SMALL)
        assert planner.stats["profile"] == 2

    def test_second_gpu_triggers_second_profile(self):
        planner = Planner()
        planner.plan(SMALL)
        planner.plan(SMALL.replace(gpu="a40"))
        assert planner.stats["profile"] == 2
        assert planner.stats["partition"] == 2
        assert planner.stats["model"] == 1

    def test_sweep_rows_are_comparable(self):
        planner = Planner()
        rows = sweep(
            (SMALL.replace(strategy=n) for n in BUILTINS), planner=planner
        )
        base = {r.strategy: r for r in rows}["max-freq"]
        assert base.energy_savings_pct == pytest.approx(0.0)
        assert base.slowdown_pct == pytest.approx(0.0)
        for r in rows:
            assert r.baseline_energy_j == pytest.approx(base.energy_j)
            row = r.to_dict()
            assert row["strategy"] == r.strategy
            assert row["energy_j"] > 0

    def test_perseus_report_matches_frontier_lookup(self):
        planner = Planner()
        report = planner.plan(SMALL)
        stack = planner.result(SMALL)
        schedule = stack.optimizer.schedule_for_straggler(None)
        assert report.plan == dict(schedule.frequencies)


class TestPlanPipelineShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="plan_pipeline"):
            repro.plan_pipeline("bert-large", num_stages=2,
                                num_microbatches=2, freq_stride=24)

    def test_shim_identical_to_planner_path(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = repro.plan_pipeline("bert-large", num_stages=2,
                                      num_microbatches=3, freq_stride=24)
        spec = PlanSpec("bert-large", stages=2, microbatches=3,
                        freq_stride=24)
        new = default_planner().result(spec)
        assert old.model is new.model
        assert old.partition is new.partition
        assert old.profile is new.profile
        assert old.dag is new.dag
        assert old.optimizer is new.optimizer
        assert old.frontier.t_min == pytest.approx(new.frontier.t_min)
        assert old.frontier.t_star == pytest.approx(new.frontier.t_star)


class TestServerSpecRegistration:
    def test_register_spec_characterizes(self):
        from repro.runtime.server import PerseusServer

        server = PerseusServer()
        server.register_spec("job-api", SMALL, blocking=True)
        frontier = server.frontier_of("job-api")
        assert frontier.t_min <= frontier.t_star
        schedule = server.current_schedule("job-api")
        assert schedule.iteration_time == pytest.approx(frontier.t_min)

    def test_register_spec_rejects_non_perseus_strategy(self):
        from repro.exceptions import ServerError
        from repro.runtime.server import PerseusServer

        server = PerseusServer()
        with pytest.raises(ServerError, match="zeus-global"):
            server.register_spec(
                "job-bad", SMALL.replace(strategy="zeus-global")
            )


class TestCompareCLI:
    def test_compare_prints_row_per_strategy(self, capsys):
        from repro.cli import main

        rc = main(["compare", "bert-large", "--stages", "2",
                   "--microbatches", "3", "--freq-stride", "24"])
        assert rc == 0
        out = capsys.readouterr().out
        for builtin in BUILTINS:
            assert builtin in out

    def test_plan_accepts_strategy_flag(self, capsys):
        from repro.cli import main

        rc = main(["plan", "bert-large", "--stages", "2",
                   "--microbatches", "3", "--freq-stride", "24",
                   "--strategy", "envpipe"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "strategy   : envpipe" in out and "savings" in out
        assert "intrinsic" not in out  # that label is Perseus-only

    def test_straggler_reports_clamping(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "frontier.json"
        assert main(["plan", "bert-large", "--stages", "2",
                     "--microbatches", "3", "--freq-stride", "24",
                     "-o", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["straggler", str(out_path),
                     "--degrees", "1.01", "99.0"]) == 0
        out = capsys.readouterr().out
        assert "degree 99.00" in out
        assert "clamped to T*" in out
        # the in-range degree must NOT be flagged as clamped
        in_range_line = [l for l in out.splitlines() if "degree 1.01" in l][0]
        assert "clamped" not in in_range_line
