"""Frequency-table semantics: ordering, snapping, subsampling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.gpu.frequency import FrequencyTable


def test_from_range_includes_endpoints():
    table = FrequencyTable.from_range(210, 1410, 15)
    assert table.min == 210
    assert table.max == 1410
    assert 1410 in table


def test_from_range_uneven_top_is_pinned():
    table = FrequencyTable.from_range(200, 333, 100)
    assert list(table) == [200, 300, 333]


def test_rejects_empty_and_nonpositive():
    with pytest.raises(ConfigurationError):
        FrequencyTable(())
    with pytest.raises(ConfigurationError):
        FrequencyTable((0, 100))


def test_deduplicates_and_sorts():
    table = FrequencyTable((300, 100, 300, 200))
    assert list(table) == [100, 200, 300]


def test_snap_down_and_up():
    table = FrequencyTable((100, 200, 300))
    assert table.snap_down(250) == 200
    assert table.snap_down(50) == 100  # clamps at bottom
    assert table.snap_up(250) == 300
    assert table.snap_up(350) == 300  # clamps at top
    assert table.snap_down(200) == 200
    assert table.snap_up(200) == 200


def test_descending_order():
    table = FrequencyTable.from_range(100, 130, 15)
    assert table.descending() == [130, 115, 100]


def test_index_exact_only():
    table = FrequencyTable((100, 200))
    assert table.index(200) == 1
    with pytest.raises(ValueError):
        table.index(150)


def test_subsample_keeps_endpoints():
    table = FrequencyTable.from_range(210, 1410, 15)
    coarse = table.subsample(8)
    assert coarse.min == 210
    assert coarse.max == 1410
    assert len(coarse) < len(table)
    assert set(coarse).issubset(set(table))


@given(st.sets(st.integers(min_value=1, max_value=3000), min_size=1, max_size=40))
def test_snap_properties(freqs):
    table = FrequencyTable(tuple(freqs))
    for probe in list(freqs)[:5]:
        assert table.snap_down(probe) <= probe or probe < table.min
        assert table.snap_up(probe) >= probe or probe > table.max
        assert table.snap_down(probe) in table
        assert table.snap_up(probe) in table
