"""Third-party plugin discovery via ``repro.strategies`` entry points.

Installs a *stub distribution* onto ``sys.path`` -- a real
``.dist-info`` directory with an ``entry_points.txt``, exactly what pip
would lay down -- and checks that rescanning the registry picks up a
planning strategy, a fleet policy and a self-registering module from
it, and that a broken entry point degrades to a warning instead of
taking the registry down.
"""

import sys
import textwrap

import pytest

from repro.api.strategies import (
    _REGISTRY as _STRATEGY_REGISTRY,
    get_strategy,
    list_strategies,
    load_plugins,
)
from repro.fleet.policy import _REGISTRY as _POLICY_REGISTRY
from repro.fleet import list_policies

STUB_MODULE = """
from repro.api import register_strategy
from repro.fleet import register_policy


class StubStrategy:
    \"\"\"Stub strategy from the test distribution.\"\"\"

    def plan(self, ctx):
        return {n: 0 for n in ctx.dag.nodes}


class StubPolicy:
    \"\"\"Stub fleet policy from the test distribution.\"\"\"

    def allocate(self, ctx):
        return {j.job_id: 0 for j in ctx.jobs}


@register_strategy("stub-self-registered")
def _self_registered(ctx):
    \"\"\"Registered by importing the plugin module itself.\"\"\"
    return {n: 0 for n in ctx.dag.nodes}
"""

ENTRY_POINTS = """
[repro.strategies]
stub-strategy = repro_stub_plugin:StubStrategy
stub-policy = repro_stub_plugin:StubPolicy
stub-module = repro_stub_plugin
stub-broken = repro_stub_plugin:DoesNotExist
"""

METADATA = """
Metadata-Version: 2.1
Name: repro-stub-plugin
Version: 0.1
"""


@pytest.fixture()
def stub_distribution(tmp_path):
    """A fake installed distribution exposing the entry points above."""
    (tmp_path / "repro_stub_plugin.py").write_text(
        textwrap.dedent(STUB_MODULE)
    )
    dist_info = tmp_path / "repro_stub_plugin-0.1.dist-info"
    dist_info.mkdir()
    (dist_info / "METADATA").write_text(textwrap.dedent(METADATA).strip())
    (dist_info / "entry_points.txt").write_text(
        textwrap.dedent(ENTRY_POINTS).strip() + "\n"
    )
    sys.path.insert(0, str(tmp_path))
    import importlib

    importlib.invalidate_caches()
    try:
        yield tmp_path
    finally:
        sys.path.remove(str(tmp_path))
        sys.modules.pop("repro_stub_plugin", None)
        for name in ("stub-strategy", "stub-self-registered"):
            _STRATEGY_REGISTRY.pop(name, None)
        _POLICY_REGISTRY.pop("stub-policy", None)
        importlib.invalidate_caches()
        load_plugins(reload=True)  # rescan without the stub on the path


def test_stub_distribution_registers_everything(stub_distribution):
    with pytest.warns(UserWarning, match="stub-broken"):
        registered = load_plugins(reload=True)
    assert {"stub-strategy", "stub-policy", "stub-module"} <= \
        set(registered)
    assert "stub-broken" not in registered

    # The strategy is enumerable and planning-capable.
    assert "stub-strategy" in list_strategies()
    strategy = get_strategy("stub-strategy")
    assert strategy.name == "stub-strategy"
    from repro.api import strategy_description

    assert "Stub strategy" in strategy_description(strategy)

    # The module entry point self-registered its function strategy.
    assert "stub-self-registered" in list_strategies()

    # The fleet policy landed in the policy registry.
    assert "stub-policy" in list_policies()


def test_plugin_loading_is_idempotent(stub_distribution):
    with pytest.warns(UserWarning):
        load_plugins(reload=True)
    # A second scan without reload is a no-op (already loaded).
    assert load_plugins() == []
    # Reloading re-registers (overwrite semantics), not duplicates.
    with pytest.warns(UserWarning):
        names = load_plugins(reload=True)
    assert names.count("stub-strategy") == 1


def test_instance_objects_register_directly():
    # Entry points may resolve to pre-configured *instances*; the
    # registries store them as-is instead of rejecting them.
    from repro.api import register_strategy

    class InstStrategy:
        """Pre-configured strategy instance."""

        def plan(self, ctx):
            return {}

    register_strategy("inst-strategy-test")(InstStrategy())
    try:
        assert get_strategy("inst-strategy-test").plan(None) == {}
    finally:
        _STRATEGY_REGISTRY.pop("inst-strategy-test", None)


def test_builtins_survive_without_plugins():
    load_plugins(reload=True)
    names = list_strategies()
    assert {"perseus", "envpipe", "max-freq", "min-energy",
            "random-sampler"} <= set(names)
