"""Continuous cost models: fits, effective energy, feasible ranges."""

import pytest

from repro.core.costmodel import build_cost_model, build_cost_models
from repro.exceptions import ProfilingError
from repro.profiler.measurement import Measurement, OpProfile


def make_profile(points, fixed=False):
    op = OpProfile(op=(0, "forward"), fixed=fixed)
    for freq, t, e in points:
        op.add(Measurement(freq_mhz=freq, time_s=t, energy_j=e))
    return op


class TestBuild:
    def test_bounds_from_pareto(self, small_cost_models):
        for cm in small_cost_models.values():
            assert cm.t_min < cm.t_max
            pareto = cm.profile.pareto()
            assert cm.t_min == pytest.approx(pareto[0].time_s)
            assert cm.t_max == pytest.approx(pareto[-1].time_s)

    def test_t_max_is_min_raw_energy_time(self, small_cost_models):
        """T* durations come from the min-energy clock (§3.1)."""
        for cm in small_cost_models.values():
            min_e = cm.profile.min_energy
            assert cm.t_max == pytest.approx(min_e.time_s)

    def test_energy_interpolates_measurements(self, small_cost_models):
        for cm in small_cost_models.values():
            for meas in cm.profile.pareto():
                assert cm.energy(meas.time_s) == pytest.approx(
                    meas.energy_j, rel=0.05
                )

    def test_fixed_single_choice(self):
        op = make_profile([(0, 0.5, 10.0)], fixed=True)
        cm = build_cost_model(op, p_blocking_w=50.0)
        assert cm.fixed
        assert cm.t_min == cm.t_max == 0.5
        assert cm.energy(0.3) == 10.0  # time argument is irrelevant
        assert not cm.can_speed_up(0.5, 0.1)
        assert not cm.can_slow_down(0.5, 0.1)

    def test_single_pareto_point_treated_as_fixed(self):
        # two measurements, but one dominates the other entirely
        op = make_profile([(2, 1.0, 5.0), (1, 2.0, 6.0)])
        cm = build_cost_model(op, p_blocking_w=50.0)
        assert cm.fixed

    def test_fixed_with_multiple_measurements_rejected(self):
        op = make_profile([(0, 0.5, 10.0), (1, 0.6, 9.0)], fixed=True)
        with pytest.raises(ProfilingError):
            build_cost_model(op, p_blocking_w=50.0)


class TestEffectiveEnergy:
    def test_eta_subtracts_blocking(self, small_cost_models, small_profile):
        cm = next(iter(small_cost_models.values()))
        t = (cm.t_min + cm.t_max) / 2
        assert cm.eta(t) == pytest.approx(
            cm.energy(t) - small_profile.p_blocking_w * t
        )

    def test_eta_decreases_with_slowdown(self, small_cost_models):
        """Within the Pareto range, slowing always reduces eta (Eq. 4)."""
        for cm in small_cost_models.values():
            ts = [cm.t_min + (cm.t_max - cm.t_min) * k / 10 for k in range(11)]
            etas = [cm.eta(t) for t in ts]
            assert all(a >= b - 1e-9 for a, b in zip(etas, etas[1:]))

    def test_speedup_cost_dominates_slowdown_gain(self, small_cost_models):
        """Convexity: e+ >= e- at any interior point."""
        for cm in small_cost_models.values():
            t = (cm.t_min + cm.t_max) / 2
            tau = (cm.t_max - cm.t_min) / 10
            assert cm.speedup_cost(t, tau) >= cm.slowdown_gain(t, tau) - 1e-9

    def test_costs_are_positive(self, small_cost_models):
        for cm in small_cost_models.values():
            t = (cm.t_min + cm.t_max) / 2
            tau = (cm.t_max - cm.t_min) / 8
            assert cm.speedup_cost(t, tau) > 0
            assert cm.slowdown_gain(t, tau) > 0


class TestRanges:
    def test_partial_steps_allowed(self, small_cost_models):
        cm = next(iter(small_cost_models.values()))
        tau = cm.t_max - cm.t_min  # a full step overshoots
        assert cm.can_speed_up(cm.t_min + 1e-6, tau)
        assert not cm.can_speed_up(cm.t_min, tau)
        assert cm.can_slow_down(cm.t_max - 1e-6, tau)
        assert not cm.can_slow_down(cm.t_max, tau)

    def test_build_all_from_pipeline(self, small_profile):
        models = build_cost_models(small_profile)
        assert set(models) == set(small_profile.op_keys())
