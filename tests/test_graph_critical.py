"""Edge-centric conversion + critical-path analysis (Figure 6 steps 2-3)."""

import pytest

from repro.graph.critical import (
    critical_computations,
    critical_edge_indices,
    critical_subgraph,
    event_times,
)
from repro.graph.edgecentric import to_edge_centric
from repro.pipeline.dag import build_pipeline_dag
from repro.pipeline.schedules import schedule_1f1b


@pytest.fixture()
def simple():
    """1F1B with 2 stages, 2 microbatches; durations make stage 1 critical."""
    dag = build_pipeline_dag(schedule_1f1b(2, 2))
    ecd = to_edge_centric(dag)
    return dag, ecd


class TestEdgeCentric:
    def test_node_and_edge_counts(self, simple):
        dag, ecd = simple
        n = dag.num_computations
        assert ecd.num_nodes == 2 + 2 * n
        activity_edges = [e for e in ecd.edges if e.comp is not None]
        assert len(activity_edges) == n

    def test_activity_edges_span_in_out(self, simple):
        _, ecd = simple
        for e in ecd.edges:
            if e.comp is not None:
                assert e.u == ecd.in_node(e.comp)
                assert e.v == ecd.out_node(e.comp)

    def test_topology_is_acyclic(self, simple):
        _, ecd = simple
        order = ecd.topological_nodes()
        assert len(order) == ecd.num_nodes


class TestEventTimes:
    def test_makespan_matches_dag_iteration_time(self, simple):
        dag, ecd = simple
        durations = {n: 1.0 + 0.1 * n for n in dag.nodes}
        times = event_times(ecd, durations)
        assert times.makespan == pytest.approx(dag.iteration_time(durations))

    def test_earliest_below_latest(self, simple):
        dag, ecd = simple
        durations = {n: 1.0 for n in dag.nodes}
        times = event_times(ecd, durations)
        for node in range(ecd.num_nodes):
            assert times.earliest[node] <= times.latest[node] + 1e-12

    def test_source_and_sink_pinned(self, simple):
        dag, ecd = simple
        durations = {n: 2.0 for n in dag.nodes}
        times = event_times(ecd, durations)
        assert times.earliest[ecd.s] == 0.0
        assert times.latest[ecd.s] == pytest.approx(0.0)
        assert times.earliest[ecd.t] == pytest.approx(times.makespan)


class TestCriticality:
    def test_uniform_durations_all_critical_on_last_stage(self, simple):
        """With equal stages, the last stage's F/B chain has zero slack."""
        dag, ecd = simple
        durations = {n: 1.0 for n in dag.nodes}
        crit = critical_computations(ecd, durations)
        last_stage_nodes = {
            n for n, ins in dag.nodes.items() if ins.stage == 1
        }
        assert last_stage_nodes.issubset(crit)

    def test_bottleneck_stage_is_critical(self, simple):
        dag, ecd = simple
        durations = {
            n: (5.0 if dag.nodes[n].stage == 1 else 1.0) for n in dag.nodes
        }
        crit = critical_computations(ecd, durations)
        for n, ins in dag.nodes.items():
            if ins.stage == 1:
                assert n in crit

    def test_light_stage_steady_state_not_critical(self):
        dag = build_pipeline_dag(schedule_1f1b(2, 4))
        ecd = to_edge_centric(dag)
        durations = {
            n: (5.0 if dag.nodes[n].stage == 1 else 1.0) for n in dag.nodes
        }
        crit = critical_computations(ecd, durations)
        stage0 = [n for n, ins in dag.nodes.items() if ins.stage == 0]
        # some stage-0 computations must have slack
        assert any(n not in crit for n in stage0)

    def test_critical_subgraph_contains_endpoints(self, simple):
        dag, ecd = simple
        durations = {n: 1.0 for n in dag.nodes}
        edges, nodes, _ = critical_subgraph(ecd, durations)
        assert ecd.s in nodes
        assert ecd.t in nodes
        assert edges

    def test_critical_path_spans_source_to_sink(self, simple):
        """The critical edges must contain an s->t path."""
        dag, ecd = simple
        durations = {n: 1.0 + 0.01 * n for n in dag.nodes}
        crit = critical_edge_indices(ecd, durations)
        adj = {}
        for idx in crit:
            e = ecd.edges[idx]
            adj.setdefault(e.u, []).append(e.v)
        seen = {ecd.s}
        stack = [ecd.s]
        while stack:
            u = stack.pop()
            for v in adj.get(u, ()):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        assert ecd.t in seen

    def test_slack_positive_for_noncritical(self, simple):
        dag, ecd = simple
        durations = {
            n: (5.0 if dag.nodes[n].stage == 1 else 1.0) for n in dag.nodes
        }
        times = event_times(ecd, durations)
        crit = set(critical_edge_indices(ecd, durations, times))
        for idx, e in enumerate(ecd.edges):
            d = durations[e.comp] if e.comp is not None else 0.0
            slack = times.slack(e, d)
            if idx in crit:
                assert slack <= 1e-7
            else:
                assert slack > 0
