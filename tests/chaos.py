"""Reusable fault-injection harness for the replica-fleet tests.

Not a test module (pytest collects ``test_*.py`` only): this is the
library the chaos suites in ``test_replica.py`` build on.  Everything
here is deterministic-by-construction -- faults are injected at
*observable* protocol points (a claim file appearing, a byte count on
a socket), not with sleeps and hope:

* :func:`wait_for` -- bounded condition polling with a diagnostic.
* :func:`make_stale_claim` -- forge the lease a crashed process would
  leave behind (claim file with an ancient mtime, no heartbeat).
* :func:`kill_leader_on_claim` -- watch the store's ``flights/``
  directory for a claim, match its recorded pid to a daemon, SIGKILL
  it mid-materialization.  The claim's appearance is the deterministic
  "leader is now mid-flight" signal; pair it with
  ``MATERIALIZE_DELAY_ENV`` to hold the window open.
* :class:`ChaosProxy` -- a TCP proxy between client and daemon that
  drops connections after N response bytes (truncated response /
  daemon restart mid-request), delays traffic, or refuses outright.
* :class:`CannedHTTPServer` -- answers every request with one fixed
  HTTP response (e.g. a bare 500) for 5xx-path tests.
* env builders for the daemon-side chaos hooks (materialization delay,
  lease-clock skew).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.service.replica import (
    CLOCK_SKEW_ENV,
    MATERIALIZE_DELAY_ENV,
    StoreFlight,
)


def wait_for(predicate: Callable[[], bool], timeout_s: float = 20.0,
             interval_s: float = 0.02, message: str = "condition") -> None:
    """Poll ``predicate`` until true or fail loudly with ``message``."""
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(
                f"timed out after {timeout_s:g}s waiting for {message}")
        time.sleep(interval_s)


def free_port() -> int:
    """An OS-granted free TCP port (closed again; races are possible
    but vanishingly rare on loopback in CI)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# -- daemon-side chaos hooks -------------------------------------------------

def slow_materialize_env(delay_s: float) -> Dict[str, str]:
    """Env that makes a daemon's expensive materialization take at
    least ``delay_s`` -- holds the leader mid-flight so a fault can be
    injected inside the window, deterministically."""
    return {MATERIALIZE_DELAY_ENV: str(delay_s)}


def clock_skew_env(skew_s: float) -> Dict[str, str]:
    """Env that skews a daemon's lease-expiry clock by ``skew_s``."""
    return {CLOCK_SKEW_ENV: str(skew_s)}


# -- lease faults ------------------------------------------------------------

def make_stale_claim(store_root: str, key: str, age_s: float = 3600.0,
                     owner: str = "crashed-process",
                     pid: int = 999_999_999) -> str:
    """Forge the claim a crashed leader leaves: present, heartbeat dead.

    Returns the claim path.  ``pid`` defaults to one that cannot be a
    live process, mirroring a leader whose host is simply gone.
    """
    observer = StoreFlight(store_root, owner="chaos-observer")
    path = observer._claim_path(key)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump({"kind": "store_flight_claim", "owner": owner,
                   "pid": pid, "key": str(key)}, fp)
    past = time.time() - age_s
    os.utime(path, (past, past))
    return path


def kill_leader_on_claim(store_root: str, daemons,
                         timeout_s: float = 30.0):
    """Wait for a lease claim to appear, SIGKILL the daemon holding it.

    ``daemons`` maps pid -> daemon-like object with a ``kill()``
    method (e.g. :class:`repro.service.replica.DaemonProcess`), or is
    an iterable of such objects.  Returns ``(daemon, claim_payload)``.
    The claim file's appearance *is* the "leader is mid-materialization"
    event, so the kill always lands inside the expensive work.
    """
    if not isinstance(daemons, dict):
        daemons = {d.pid: d for d in daemons}
    observer = StoreFlight(store_root, owner="chaos-observer")
    found: Dict[str, dict] = {}

    def leader_claimed() -> bool:
        for payload in observer.claims().values():
            if payload.get("pid") in daemons:
                found["claim"] = payload
                return True
        return False

    wait_for(leader_claimed, timeout_s=timeout_s,
             message=f"a lease claim by one of pids {sorted(daemons)}")
    victim = daemons[found["claim"]["pid"]]
    victim.kill()
    return victim, found["claim"]


def kill_process(pid: int) -> None:
    """SIGKILL by pid (no cleanup handlers run -- a true crash)."""
    os.kill(pid, signal.SIGKILL)


# -- socket faults -----------------------------------------------------------

class ChaosProxy:
    """TCP proxy injecting transport faults between client and daemon.

    Point a client at :attr:`url`; traffic forwards to ``upstream``
    (an ``http://host:port`` origin) according to :attr:`mode`:

    * ``"pass"``   -- transparent forwarding.
    * ``"drop"``   -- forward ``drop_after_bytes`` of each *response*,
      then reset both sockets: the client sees a truncated response /
      connection reset, exactly what a daemon dying mid-request looks
      like.
    * ``"delay"``  -- sleep ``delay_s`` before each response chunk.
    * ``"refuse"`` -- accept and immediately close (a daemon that is
      bound but broken).

    ``mode`` is mutable at runtime, so one proxy can misbehave for the
    first request and heal for the next.
    """

    def __init__(self, upstream: str, mode: str = "pass",
                 drop_after_bytes: int = 20,
                 delay_s: float = 0.05) -> None:
        host, _, port = upstream.rsplit("/", 1)[-1].partition(":")
        self.upstream: Tuple[str, int] = (host, int(port))
        self.mode = mode
        self.drop_after_bytes = drop_after_bytes
        self.delay_s = delay_s
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.port = self._listener.getsockname()[1]
        self.url = f"http://127.0.0.1:{self.port}"
        self._closed = threading.Event()
        self._conns: list = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return
            if self.mode == "refuse":
                self._reset(downstream)
                continue
            try:
                upstream = socket.create_connection(self.upstream,
                                                    timeout=10.0)
            except OSError:
                self._reset(downstream)
                continue
            self._conns.append(downstream)
            self._conns.append(upstream)
            threading.Thread(target=self._pump, daemon=True,
                             args=(downstream, upstream, False)).start()
            threading.Thread(target=self._pump, daemon=True,
                             args=(upstream, downstream, True)).start()

    @staticmethod
    def _reset(sock: socket.socket) -> None:
        """Close with RST (SO_LINGER 0) -- an abrupt death, not FIN.

        ``shutdown(SHUT_RD)`` first: the sibling pump thread sits in a
        blocking ``recv`` on this socket, and that in-flight syscall
        holds a kernel reference to the open file -- a bare ``close``
        would only drop the fd and defer the teardown (and its RST)
        until the recv returns, which is never.  SHUT_RD wakes the
        reader without putting a FIN on the wire, so the close that
        follows still resets.
        """
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            b"\x01\x00\x00\x00\x00\x00\x00\x00")
        except OSError:
            pass
        try:
            sock.shutdown(socket.SHUT_RD)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _pump(self, src: socket.socket, dst: socket.socket,
              is_response: bool) -> None:
        forwarded = 0
        try:
            while True:
                chunk = src.recv(4096)
                if not chunk:
                    break
                if is_response and self.mode == "delay":
                    time.sleep(self.delay_s)
                if is_response and self.mode == "drop":
                    budget = self.drop_after_bytes - forwarded
                    if budget <= 0:
                        self._reset(dst)
                        self._reset(src)
                        return
                    chunk = chunk[:budget]
                dst.sendall(chunk)
                forwarded += len(chunk)
                if is_response and self.mode == "drop" \
                        and forwarded >= self.drop_after_bytes:
                    self._reset(dst)
                    self._reset(src)
                    return
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        for sock in self._conns:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CannedHTTPServer:
    """Answers every request with one fixed response (default: 500).

    For testing the client's 5xx handling without needing a real
    daemon bug; speaks just enough HTTP for ``http.client``.
    """

    def __init__(self, status: int = 500,
                 body: Optional[dict] = None) -> None:
        payload = json.dumps(body if body is not None else {
            "error": {"kind": "ServiceError", "message": "injected 500"},
        }).encode("utf-8")
        reason = {500: "Internal Server Error", 502: "Bad Gateway",
                  503: "Service Unavailable"}.get(status, "Error")
        self._response = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii") + payload
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.port = self._listener.getsockname()[1]
        self.url = f"http://127.0.0.1:{self.port}"
        self._closed = threading.Event()
        threading.Thread(target=self._serve, name="canned-http",
                         daemon=True).start()

    def _serve(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(target=self._answer, args=(conn,),
                             daemon=True).start()

    def _answer(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(5.0)
            # Read until the blank line ending the headers (plus any
            # body the client pushes); one recv is enough for the small
            # test envelopes, and robustness here is not the point.
            conn.recv(65536)
            conn.sendall(self._response)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "CannedHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
