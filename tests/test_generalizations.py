"""Generalizations (§4.4, §7): interleaved schedules, CPU/big-data DAGs.

Perseus claims to optimize *any* workload expressible as a DAG of
computations with per-computation time-energy choices.  These tests
exercise that claim beyond 1F1B GPUs: interleaved 1F1B with virtual
stages sharing devices, and a map-reduce style CPU DAG with DVFS P-states
(the §7 "Big Data and Energy Consumption" application).
"""

import pytest

from repro.core.costmodel import build_cost_models
from repro.core.frontier import characterize_frontier
from repro.gpu.specs import A100_PCIE
from repro.models.registry import build_model
from repro.partition.algorithms import partition_model
from repro.pipeline.dag import ComputationDag, build_pipeline_dag
from repro.pipeline.instructions import InstrKind, Instruction
from repro.pipeline.schedules import schedule_interleaved_1f1b
from repro.profiler.measurement import Measurement, PipelineProfile
from repro.profiler.online import profile_pipeline


class TestInterleaved1F1B:
    def test_virtual_stages_share_devices(self):
        """2 devices x 2 chunks = 4 virtual stages; device exclusivity
        must hold across chunks."""
        sched = schedule_interleaved_1f1b(2, 4, num_chunks=2)
        device_of_stage = [s % 2 for s in range(4)]
        dag = build_pipeline_dag(sched, device_of_stage=device_of_stage)
        durations = {n: 1.0 for n in dag.nodes}
        starts = dag.earliest_start_times(durations)
        by_device = {}
        for n, ins in dag.nodes.items():
            by_device.setdefault(device_of_stage[ins.stage], []).append(
                (starts[n], starts[n] + 1.0)
            )
        for windows in by_device.values():
            windows.sort()
            for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
                assert s2 >= e1 - 1e-9, "device ran two chunks at once"

    def test_interleaved_frontier_characterizes(self):
        model = build_model("gpt3-xl", 2)
        # virtual stages = 4 model chunks, two per device
        part = partition_model(model, 4, A100_PCIE)
        profile = profile_pipeline(model, part, A100_PCIE, freq_stride=12)
        sched = schedule_interleaved_1f1b(2, 4, num_chunks=2)
        dag = build_pipeline_dag(sched, device_of_stage=[0, 1, 0, 1])
        frontier = characterize_frontier(dag, profile, tau=0.01)
        assert frontier.t_min < frontier.t_star
        effs = [p.effective_energy for p in frontier.points]
        assert all(a > b for a, b in zip(effs, effs[1:]))


def _cpu_measurements(base_time, base_power, idle_w):
    """Synthetic CPU DVFS ladder: P-states from 3.6 GHz down to 1.2 GHz."""
    out = []
    for mhz in range(3600, 1100, -300):
        x = mhz / 3600
        t = base_time * (0.3 + 0.7 / x)  # partially memory-bound
        p = idle_w + (base_power - idle_w) * x**2.2
        out.append(Measurement(freq_mhz=mhz, time_s=t, energy_j=p * t))
    return out


class TestBigDataCPU:
    """§7: a DAG of CPU computations with per-task DVFS choices."""

    @pytest.fixture(scope="class")
    def mapreduce(self):
        # 3 workers; each runs one map task, then an all-to-all shuffle
        # barrier, then one reduce task.  Worker 1's map is the heavy one.
        dag = ComputationDag(num_stages=3, num_microbatches=1)
        maps, reduces = [], []
        for w in range(3):
            maps.append(dag.add_node(Instruction(w, 0, InstrKind.FORWARD)))
        for w in range(3):
            reduces.append(dag.add_node(Instruction(w, 0, InstrKind.BACKWARD)))
        for m in maps:
            for r in reduces:
                dag.add_edge(m, r)  # shuffle: every reducer needs every map
        dag.seal()

        profile = PipelineProfile(p_blocking_w=18.0)  # idle CPU package
        for w in range(3):
            map_time = 2.0 if w == 1 else 1.2  # skewed mapper
            for m in _cpu_measurements(map_time, 95.0, 20.0):
                profile.add_measurement((w, "forward"), m)
            for m in _cpu_measurements(0.8, 95.0, 20.0):
                profile.add_measurement((w, "backward"), m)
        return dag, profile

    def test_frontier_on_cpu_dag(self, mapreduce):
        dag, profile = mapreduce
        frontier = characterize_frontier(dag, profile, tau=0.02)
        assert len(frontier.points) > 5
        assert frontier.t_min < frontier.t_star

    def test_light_mappers_slowed_at_tmin(self, mapreduce):
        """The skewed mapper pins the barrier; the others can crawl."""
        dag, profile = mapreduce
        frontier = characterize_frontier(dag, profile, tau=0.02)
        cms = build_cost_models(profile)
        tmin = frontier.min_time_schedule
        heavy = [n for n, i in dag.nodes.items()
                 if i.stage == 1 and i.kind is InstrKind.FORWARD][0]
        light = [n for n, i in dag.nodes.items()
                 if i.stage == 0 and i.kind is InstrKind.FORWARD][0]
        heavy_frac = (tmin.durations[heavy] - cms[(1, "forward")].t_min) / (
            cms[(1, "forward")].t_max - cms[(1, "forward")].t_min
        )
        light_frac = (tmin.durations[light] - cms[(0, "forward")].t_min) / (
            cms[(0, "forward")].t_max - cms[(0, "forward")].t_min
        )
        assert heavy_frac < 0.05  # the straggling mapper runs flat out
        assert light_frac > 0.5  # light mappers exploit the skew

    def test_deadline_lookup(self, mapreduce):
        """'Lowest frequency meeting the deadline' falls out of Eq. 2."""
        dag, profile = mapreduce
        frontier = characterize_frontier(dag, profile, tau=0.02)
        deadline = frontier.t_min * 1.15
        sched = frontier.schedule_for(deadline)
        assert sched.iteration_time <= deadline + 1e-9
        assert sched.effective_energy < frontier.points[0].effective_energy
