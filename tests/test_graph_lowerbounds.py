"""Max-flow with lower bounds (Algorithm 3): feasibility, cuts, repairs."""

import pytest

from repro.exceptions import GraphError, InfeasibleFlowError
from repro.graph.lowerbounds import (
    BoundedEdge,
    max_flow_with_lower_bounds,
)
from repro.graph.maxflow import INF


class TestFeasibility:
    def test_plain_maxflow_when_no_lower_bounds(self):
        edges = [BoundedEdge(0, 1, 0.0, 5.0), BoundedEdge(1, 2, 0.0, 3.0)]
        res = max_flow_with_lower_bounds(3, edges, 0, 2)
        assert res.max_flow == pytest.approx(3.0)

    def test_lower_bound_forces_flow(self):
        # chain with lb 2 on the first edge; both edges can carry it
        edges = [BoundedEdge(0, 1, 2.0, 5.0), BoundedEdge(1, 2, 0.0, 5.0)]
        res = max_flow_with_lower_bounds(3, edges, 0, 2)
        assert res.flows[0] >= 2.0 - 1e-9

    def test_infeasible_chain_detected(self):
        # lb 5 cannot squeeze through downstream ub 2
        edges = [BoundedEdge(0, 1, 5.0, 6.0), BoundedEdge(1, 2, 0.0, 2.0)]
        with pytest.raises(InfeasibleFlowError) as err:
            max_flow_with_lower_bounds(3, edges, 0, 2)
        assert err.value.violating_set is not None

    def test_flows_respect_bounds(self):
        edges = [
            BoundedEdge(0, 1, 1.0, 4.0),
            BoundedEdge(0, 2, 0.0, 3.0),
            BoundedEdge(1, 3, 0.0, 4.0),
            BoundedEdge(2, 3, 1.0, 3.0),
        ]
        res = max_flow_with_lower_bounds(4, edges, 0, 3)
        for e, f in zip(edges, res.flows):
            assert e.lb - 1e-9 <= f <= e.ub + 1e-9

    def test_conservation_at_internal_nodes(self):
        edges = [
            BoundedEdge(0, 1, 1.0, 5.0),
            BoundedEdge(1, 2, 0.0, 2.0),
            BoundedEdge(1, 3, 0.0, 5.0),
            BoundedEdge(2, 3, 0.0, 5.0),
        ]
        res = max_flow_with_lower_bounds(4, edges, 0, 3)
        for node in (1, 2):
            inflow = sum(f for e, f in zip(edges, res.flows) if e.v == node)
            outflow = sum(f for e, f in zip(edges, res.flows) if e.u == node)
            assert inflow == pytest.approx(outflow, abs=1e-6)


class TestMinCut:
    def test_cut_value_with_lower_bound_credit(self):
        """Cut capacity = sum(forward ub) - sum(backward lb)."""
        # Diamond: cutting {0,2} crosses 0->1 (ub 2) fwd and 1->2 (lb 1) bwd.
        edges = [
            BoundedEdge(0, 1, 0.0, 2.0),
            BoundedEdge(0, 2, 0.0, 4.0),
            BoundedEdge(1, 2, 1.0, 3.0),
            BoundedEdge(1, 3, 0.0, 4.0),
            BoundedEdge(2, 3, 0.0, 4.0),
        ]
        res = max_flow_with_lower_bounds(4, edges, 0, 3)
        fwd, bwd = res.cut_edges(edges)
        cut_value = sum(edges[i].ub for i in fwd) - sum(edges[i].lb for i in bwd)
        assert res.max_flow == pytest.approx(cut_value, abs=1e-6)

    def test_source_side_contains_source(self):
        edges = [BoundedEdge(0, 1, 0.0, 1.0)]
        res = max_flow_with_lower_bounds(2, edges, 0, 1)
        assert 0 in res.source_side
        assert 1 not in res.source_side

    def test_infinite_edges_never_cut_forward(self):
        edges = [
            BoundedEdge(0, 1, 0.0, INF),
            BoundedEdge(1, 2, 0.0, 2.0),
            BoundedEdge(2, 3, 0.0, INF),
        ]
        res = max_flow_with_lower_bounds(4, edges, 0, 3)
        fwd, _ = res.cut_edges(edges)
        assert fwd == [1]
        assert res.max_flow == pytest.approx(2.0)


class TestValidation:
    def test_bad_source_sink(self):
        with pytest.raises(GraphError):
            max_flow_with_lower_bounds(2, [], 0, 0)

    def test_bounds_sanity(self):
        with pytest.raises(GraphError):
            BoundedEdge(0, 1, 3.0, 1.0)
        with pytest.raises(GraphError):
            BoundedEdge(0, 1, -1.0, 1.0)
