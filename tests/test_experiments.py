"""Experiment harness: workloads, evaluation rows, report rendering."""

import pytest

from repro.experiments.report import format_table, shape_check
from repro.experiments.runner import (
    evaluate_intrinsic,
    evaluate_realized_potential,
    evaluate_straggler,
    prepare,
)
from repro.experiments.workloads import (
    A40_3D_WORKLOAD,
    A40_PP8_WORKLOADS,
    A100_PP4_WORKLOADS,
    ALL_WORKLOADS,
    effective_microbatches,
    get_workload,
)


@pytest.fixture(scope="module")
def gpt3_setup():
    return prepare(A100_PP4_WORKLOADS[0], num_microbatches=8, freq_stride=8)


class TestWorkloads:
    def test_counts(self):
        assert len(A100_PP4_WORKLOADS) == 5
        assert len(A40_PP8_WORKLOADS) == 5
        assert len(ALL_WORKLOADS) == 11

    def test_lookup(self):
        wl = get_workload("gpt3-1.3b@a100-pp4")
        assert wl.model_name == "gpt3-xl"
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_3d_workload_gpu_count(self):
        assert A40_3D_WORKLOAD.total_gpus == 16  # DP2 x TP2 x PP4

    def test_microbatch_scaling(self):
        wl = A100_PP4_WORKLOADS[0]
        assert effective_microbatches(wl, None) <= wl.num_microbatches
        assert effective_microbatches(wl, 7) == 7


class TestPrepare:
    def test_setup_complete(self, gpt3_setup):
        assert gpt3_setup.num_microbatches == 8
        assert gpt3_setup.dag.num_stages == 4
        assert gpt3_setup.tau > 0
        assert gpt3_setup.partition.num_stages == 4

    def test_executions_consistent(self, gpt3_setup):
        base = gpt3_setup.run_max_frequency()
        slow = gpt3_setup.run_min_energy()
        assert base.iteration_time < slow.iteration_time


class TestEvaluations:
    def test_intrinsic_rows(self, gpt3_setup):
        rows = evaluate_intrinsic(gpt3_setup)
        methods = {r.method for r in rows}
        assert methods == {"Perseus", "EnvPipe"}
        perseus = next(r for r in rows if r.method == "Perseus")
        assert 5.0 < perseus.energy_savings_pct < 30.0
        assert perseus.slowdown_pct < 1.0

    def test_straggler_rows_shape(self, gpt3_setup):
        rows = evaluate_straggler(gpt3_setup, (1.05, 1.2, 1.5))
        perseus = [r for r in rows if r.method == "Perseus"]
        envpipe = [r for r in rows if r.method == "EnvPipe"]
        assert len(perseus) == len(envpipe) == 3
        # Perseus exploits slack; EnvPipe's fixed plan decays monotonically
        assert all(p.energy_savings_pct > e.energy_savings_pct
                   for p, e in zip(perseus, envpipe))
        assert envpipe[0].energy_savings_pct >= envpipe[-1].energy_savings_pct

    def test_straggler_savings_peak_then_decline(self, gpt3_setup):
        """Table 4's signature shape: rise to ~T*, then wane."""
        rows = evaluate_straggler(
            gpt3_setup, (1.05, 1.1, 1.2, 1.3, 1.4, 1.5)
        )
        perseus = [r.energy_savings_pct for r in rows if r.method == "Perseus"]
        peak = max(perseus)
        assert perseus[-1] < peak  # declines past T*
        assert perseus[0] < peak + 1e-9  # rises from 1.05

    def test_realized_potential(self, gpt3_setup):
        """§6.2.3: Perseus realizes a large share of the §2.4 bound."""
        rp = evaluate_realized_potential(gpt3_setup)
        assert 0.4 < rp.fraction < 1.1
        assert rp.potential_pct > rp.realized_pct * 0.5


class TestReport:
    def test_format_table(self):
        out = format_table(
            ["model", "savings"], [["gpt3", 13.2], ["bloom", 11.7]], title="T3"
        )
        assert "gpt3" in out and "13.2" in out and "T3" in out
        lines = out.splitlines()
        assert len({len(l) for l in lines[1:]}) <= 2  # aligned

    def test_shape_check_bands(self):
        assert "[ok]" in shape_check("x", 12.0, 13.0)
        assert "[DIVERGES]" in shape_check("x", 50.0, 5.0)
