"""Minimum-imbalance partitioning: exactness, structure, Table 1 shapes."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PartitionError
from repro.gpu.specs import A100_PCIE
from repro.models.registry import build_model
from repro.partition.algorithms import (
    min_imbalance_partition,
    partition_model,
    partition_model_uniform,
    uniform_partition,
)
from repro.partition.imbalance import (
    imbalance_ratio,
    stage_latencies,
    validate_partition,
)


def brute_force_best_ratio(lats, stages, tail=0.0):
    """Reference: try every contiguous partition."""
    n = len(lats)
    best = float("inf")
    for cuts in itertools.combinations(range(1, n), stages - 1):
        bounds = [0] + list(cuts) + [n]
        stage_lats = stage_latencies(lats, bounds, tail)
        best = min(best, imbalance_ratio(stage_lats))
    return best


class TestImbalanceMetrics:
    def test_perfect_balance_is_one(self):
        assert imbalance_ratio([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_ratio_definition(self):
        assert imbalance_ratio([1.0, 2.0]) == pytest.approx(2.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(PartitionError):
            imbalance_ratio([])
        with pytest.raises(PartitionError):
            imbalance_ratio([1.0, 0.0])

    def test_validate_partition(self):
        validate_partition([0, 2, 5], 5, 2)
        with pytest.raises(PartitionError):
            validate_partition([0, 2, 4], 5, 2)  # wrong end
        with pytest.raises(PartitionError):
            validate_partition([0, 2, 2, 5], 5, 3)  # empty stage

    def test_tail_added_to_last_stage(self):
        lats = stage_latencies([1.0, 1.0], [0, 1, 2], tail_latency=0.5)
        assert lats == [1.0, 1.5]


class TestUniformPartition:
    def test_even_split(self):
        assert uniform_partition(8, 4) == [0, 2, 4, 6, 8]

    def test_remainder_goes_to_front(self):
        assert uniform_partition(10, 4) == [0, 3, 6, 8, 10]

    def test_rejects_impossible(self):
        with pytest.raises(PartitionError):
            uniform_partition(3, 4)


class TestMinImbalanceDP:
    def test_matches_brute_force_small(self):
        lats = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for stages in (2, 3, 4):
            result = min_imbalance_partition(lats, stages)
            assert result.ratio == pytest.approx(
                brute_force_best_ratio(lats, stages)
            )

    def test_matches_brute_force_with_tail(self):
        lats = [2.0, 2.0, 3.0, 1.0, 2.0, 4.0]
        result = min_imbalance_partition(lats, 3, tail_latency=1.5)
        assert result.ratio == pytest.approx(
            brute_force_best_ratio(lats, 3, tail=1.5)
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=4, max_size=10),
        st.integers(min_value=2, max_value=4),
    )
    def test_property_matches_brute_force(self, lats, stages):
        if len(lats) < stages:
            return
        result = min_imbalance_partition(lats, stages)
        assert result.ratio == pytest.approx(
            brute_force_best_ratio(lats, stages), rel=1e-9
        )

    def test_dominates_uniform(self):
        model = build_model("gpt3-xl")
        best = partition_model(model, 4, A100_PCIE)
        uniform = partition_model_uniform(model, 4, A100_PCIE)
        assert best.ratio <= uniform.ratio + 1e-12

    def test_rejects_impossible(self):
        with pytest.raises(PartitionError):
            min_imbalance_partition([1.0, 2.0], 3)
        with pytest.raises(PartitionError):
            min_imbalance_partition([1.0, -2.0, 3.0], 2)

    def test_result_structure(self):
        result = min_imbalance_partition([1.0] * 8, 4)
        assert result.num_stages == 4
        assert result.stage_layer_counts() == [2, 2, 2, 2]
        assert result.ratio == pytest.approx(1.0)


class TestPaperShapes:
    """Table 1: imbalance shapes the paper reports (loose bands)."""

    @pytest.mark.parametrize(
        "name,paper_r4",
        [("gpt3-xl", 1.17), ("bloom-3b", 1.13), ("bert-huge", 1.17),
         ("t5-3b", 1.06), ("gpt3-175b", 1.02)],
    )
    def test_four_stage_ratio_band(self, name, paper_r4):
        model = build_model(name)
        ratio = partition_model(model, 4, A100_PCIE).ratio
        assert abs(ratio - paper_r4) < 0.10

    def test_more_stages_more_imbalance(self):
        """Appendix B.2: deeper pipelines are harder to balance."""
        for name in ("gpt3-xl", "bert-huge", "gpt3-175b"):
            model = build_model(name)
            r4 = partition_model(model, 4, A100_PCIE).ratio
            r8 = partition_model(model, 8, A100_PCIE).ratio
            assert r8 >= r4 - 1e-9

    def test_bigger_models_better_balance(self):
        """Within GPT-3, more layers -> smaller ratio at fixed stages."""
        r_small = partition_model(build_model("gpt3-xl"), 4, A100_PCIE).ratio
        r_big = partition_model(build_model("gpt3-175b"), 4, A100_PCIE).ratio
        assert r_big < r_small
