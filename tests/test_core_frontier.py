"""Frontier characterization: Algorithm 1's output properties + brute force.

The brute-force test enumerates every discrete frequency assignment of a
tiny pipeline and checks Perseus's (continuously relaxed) frontier tracks
the true discrete Pareto frontier.
"""

import itertools

import pytest

from repro.core.costmodel import build_cost_models
from repro.core.frontier import characterize_frontier
from repro.core.schedule import make_schedule
from repro.gpu.specs import A100_PCIE
from repro.models.registry import build_model
from repro.partition.algorithms import partition_model
from repro.pipeline.dag import build_pipeline_dag
from repro.pipeline.schedules import schedule_1f1b, with_data_loading
from repro.profiler.measurement import Measurement, PipelineProfile
from repro.profiler.online import profile_constant_op, profile_pipeline


@pytest.fixture(scope="module")
def tiny():
    """2-stage, 2-microbatch pipeline with a handful of clocks per op."""
    model = build_model("gpt3-xl", 2)
    part = partition_model(model, 2, A100_PCIE)
    profile = profile_pipeline(model, part, A100_PCIE, freq_stride=12)
    dag = build_pipeline_dag(schedule_1f1b(2, 2))
    return dag, profile


class TestFrontierShape:
    def test_monotone_tradeoff(self, small_optimizer):
        frontier = small_optimizer.frontier
        times = [p.iteration_time for p in frontier.points]
        effs = [p.effective_energy for p in frontier.points]
        assert times == sorted(times)
        assert all(a > b for a, b in zip(effs, effs[1:]))

    def test_endpoints(self, small_optimizer, small_profile, small_dag):
        frontier = small_optimizer.frontier
        cms = build_cost_models(small_profile)
        fastest = {n: cms[small_dag.nodes[n].op_key].t_min for n in small_dag.nodes}
        slowest = {n: cms[small_dag.nodes[n].op_key].t_max for n in small_dag.nodes}
        assert frontier.t_min == pytest.approx(
            small_dag.iteration_time(fastest), rel=1e-6
        )
        assert frontier.t_star == pytest.approx(
            small_dag.iteration_time(slowest), rel=1e-6
        )

    def test_t_star_within_paper_band(self, small_optimizer):
        """Figures 8/9: T*/Tmin lands around 1.15-1.5."""
        frontier = small_optimizer.frontier
        assert 1.1 < frontier.t_star / frontier.t_min < 1.6

    def test_tmin_point_has_intrinsic_savings(self, small_optimizer, small_dag,
                                              small_profile):
        """The fastest frontier point must beat naive all-max energy."""
        cms = build_cost_models(small_profile)
        tmin_point = small_optimizer.frontier.min_time_schedule
        fastest = {n: cms[small_dag.nodes[n].op_key].t_min for n in small_dag.nodes}
        naive = make_schedule(small_dag, fastest, cms, realize=False)
        assert tmin_point.effective_energy < naive.effective_energy * 0.98

    def test_schedule_lookup_clamps(self, small_optimizer):
        frontier = small_optimizer.frontier
        assert frontier.schedule_for(None) is frontier.points[0]
        assert frontier.schedule_for(0.0) is frontier.points[0]
        assert (
            frontier.schedule_for(frontier.t_star * 10) is frontier.points[-1]
        )

    def test_lookup_never_exceeds_target(self, small_optimizer):
        frontier = small_optimizer.frontier
        target = (frontier.t_min + frontier.t_star) / 2
        chosen = frontier.schedule_for(target)
        assert chosen.iteration_time <= target + 1e-6

    def test_frequencies_realized(self, small_optimizer):
        for point in small_optimizer.frontier.points[:: max(1, len(
            small_optimizer.frontier.points
        ) // 10)]:
            assert set(point.frequencies) == set(point.durations)


class TestBruteForce:
    def test_tracks_discrete_pareto(self, tiny):
        dag, profile = tiny
        frontier = characterize_frontier(dag, profile, tau=0.005)
        cms = build_cost_models(profile)

        # Enumerate per-op frequency choices (ops shared across nodes).
        ops = sorted(profile.op_keys())
        choices = {op: profile.get(op).pareto() for op in ops}
        discrete = []
        for combo in itertools.product(*(choices[op] for op in ops)):
            chosen = dict(zip(ops, combo))
            durations = {
                n: chosen[dag.nodes[n].op_key].time_s for n in dag.nodes
            }
            eff = sum(
                chosen[dag.nodes[n].op_key].energy_j
                - profile.p_blocking_w * durations[n]
                for n in dag.nodes
            )
            discrete.append((dag.iteration_time(durations), eff))

        # Perseus's relaxed frontier must not be dominated by any discrete
        # assignment beyond a small relaxation gap.
        for point in frontier.points:
            better = [
                e
                for t, e in discrete
                if t <= point.iteration_time + 1e-9
                and e < point.effective_energy * 0.93 - 1e-9
            ]
            assert not better, (
                f"discrete plan beats frontier at t={point.iteration_time}"
            )

        # ...and conversely it should match the best discrete energy at the
        # slow end (where the relaxation is exact by construction).
        best_discrete = min(e for _, e in discrete)
        assert frontier.points[-1].effective_energy <= best_discrete * 1.02


class TestGeneralizations:
    def test_constant_ops_supported(self, tiny):
        """§4.4: single-choice nodes plan without breaking the crawl."""
        model = build_model("gpt3-xl", 2)
        part = partition_model(model, 2, A100_PCIE)
        profile = profile_pipeline(model, part, A100_PCIE, freq_stride=12)
        profile_constant_op(profile, 0, "dataload", duration_s=0.01)
        dag = build_pipeline_dag(with_data_loading(schedule_1f1b(2, 2)))
        frontier = characterize_frontier(dag, profile, tau=0.02)
        assert len(frontier.points) > 3
        assert frontier.t_min < frontier.t_star

    def test_gpipe_schedule_supported(self, tiny):
        """§4.4: any DAG-expressible schedule works unmodified."""
        from repro.pipeline.schedules import schedule_gpipe

        _, profile = tiny
        dag = build_pipeline_dag(schedule_gpipe(2, 2))
        frontier = characterize_frontier(dag, profile, tau=0.02)
        assert frontier.t_min < frontier.t_star
        effs = [p.effective_energy for p in frontier.points]
        assert all(a > b for a, b in zip(effs, effs[1:]))

    def test_runtime_is_recorded(self, small_optimizer):
        frontier = small_optimizer.frontier
        assert frontier.optimizer_runtime_s > 0
        assert frontier.steps > 0
        assert frontier.stats["num_computations"] == 48
