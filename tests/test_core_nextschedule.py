"""GetNextSchedule: single-step invariants of the cut-based planner."""

import pytest

from repro.core.costmodel import build_cost_models
from repro.core.nextschedule import get_next_schedule
from repro.core.schedule import schedule_energies
from repro.graph.edgecentric import to_edge_centric


@pytest.fixture()
def stepping(small_dag, small_profile):
    cms = build_cost_models(small_profile)
    node_cost = {n: cms[small_dag.nodes[n].op_key] for n in small_dag.nodes}
    ecd = to_edge_centric(small_dag)
    start = {n: node_cost[n].t_max for n in small_dag.nodes}
    return small_dag, ecd, node_cost, cms, start


TAU = 0.01


class TestSingleStep:
    def test_reduces_iteration_time(self, stepping):
        dag, ecd, node_cost, _, durations = stepping
        nxt = get_next_schedule(ecd, durations, node_cost, TAU)
        assert nxt is not None
        assert dag.iteration_time(nxt) < dag.iteration_time(durations) - 1e-9

    def test_reduction_close_to_tau(self, stepping):
        dag, ecd, node_cost, _, durations = stepping
        nxt = get_next_schedule(ecd, durations, node_cost, TAU)
        reduction = dag.iteration_time(durations) - dag.iteration_time(nxt)
        assert reduction >= 0.5 * TAU
        assert reduction <= 3.0 * TAU  # accumulation overshoot is bounded

    def test_durations_stay_in_bounds(self, stepping):
        dag, ecd, node_cost, _, durations = stepping
        for _ in range(20):
            nxt = get_next_schedule(ecd, durations, node_cost, TAU)
            if nxt is None:
                break
            for n, t in nxt.items():
                cm = node_cost[n]
                assert cm.t_min - 1e-9 <= t <= cm.t_max + 1e-9
            durations = nxt

    def test_energy_increases_along_crawl(self, stepping):
        dag, ecd, node_cost, cms, durations = stepping
        prev_eff, _ = schedule_energies(dag, durations, cms)
        for _ in range(10):
            nxt = get_next_schedule(ecd, durations, node_cost, TAU)
            if nxt is None:
                break
            eff, _ = schedule_energies(dag, nxt, cms)
            assert eff >= prev_eff - 1e-6  # faster must not be cheaper
            prev_eff = eff
            durations = nxt

    def test_only_some_nodes_touched(self, stepping):
        """A min-cut step modifies a cut, not the whole DAG."""
        _, ecd, node_cost, _, durations = stepping
        nxt = get_next_schedule(ecd, durations, node_cost, TAU)
        changed = [n for n in durations if abs(nxt[n] - durations[n]) > 1e-12]
        assert 0 < len(changed) < len(durations)

    def test_terminates_at_fastest(self, stepping):
        dag, ecd, node_cost, _, _ = stepping
        fastest = {n: node_cost[n].t_min for n in dag.nodes}
        assert get_next_schedule(ecd, fastest, node_cost, TAU) is None

    def test_rejects_bad_tau(self, stepping):
        from repro.exceptions import OptimizationError

        _, ecd, node_cost, _, durations = stepping
        with pytest.raises(OptimizationError):
            get_next_schedule(ecd, durations, node_cost, 0.0)

    def test_full_crawl_reaches_tmin(self, stepping):
        dag, ecd, node_cost, _, durations = stepping
        fastest_time = dag.iteration_time(
            {n: node_cost[n].t_min for n in dag.nodes}
        )
        for _ in range(400):
            nxt = get_next_schedule(ecd, durations, node_cost, TAU)
            if nxt is None:
                break
            durations = nxt
        assert dag.iteration_time(durations) <= fastest_time + TAU
