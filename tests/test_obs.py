"""The observability layer: spans, events, export, provenance, wiring.

Unit layers (trace context, recorder, event ring, rate limiter, Chrome
export, ASCII viewer) run in-process; the provenance tests drive a real
:class:`~repro.api.Planner` against a temp plan store and distinguish
cold builds from warm memory and disk hits; the daemon tests boot a
:class:`~repro.service.PlanningDaemon` on an ephemeral port and check
that one client-generated trace id survives the HTTP hop into the
daemon's structured events and access log.  The Prometheus
label-escaping and histogram edge-case satellites live at the bottom.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import PlanSpec, Planner
from repro.exceptions import ConfigurationError
from repro.obs import (
    EventLog,
    ProvenanceBuilder,
    RateLimiter,
    TraceRecorder,
    current_span,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    ensure_trace_id,
    fleet_timeline_to_chrome,
    format_trace,
    iter_jsonl,
    load_chrome_trace,
    load_provenance,
    new_trace_id,
    save_chrome_trace,
    set_trace_id,
    span,
    spans_to_chrome,
    traced,
    tracing_enabled,
    wrap_context,
)
from repro.obs.trace import add_stage_spans
from repro.service import PlanningDaemon, ServiceClient, reports_equal
from repro.service.metrics import (
    Histogram,
    MetricsRegistry,
    _render_labels,
)
from repro.service.wire import report_from_wire, report_to_wire

TINY = dict(gpu="a100", stages=2, microbatches=2, freq_stride=24)


def tiny_spec(model="gpt3-xl", **overrides):
    merged = dict(TINY)
    merged.update(overrides)
    return PlanSpec(model, **merged)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Recording is module-global state: never leak it across tests."""
    yield
    disable_tracing()


# ------------------------------------------------------------------- trace ctx
def test_span_disabled_is_shared_noop():
    assert not tracing_enabled()
    first, second = span("a"), span("b", attr=1)
    assert first is second  # the shared _NOOP: zero allocation
    with first as opened:
        assert opened is None


def test_enable_tracing_records_nested_spans():
    recorder = enable_tracing()
    with span("outer", level=1) as outer:
        with span("inner") as inner:
            assert inner.parent_id == outer.span_id
            assert inner.trace_id == outer.trace_id
    names = [s.name for s in recorder.spans]
    assert names == ["inner", "outer"]  # recorded at close
    assert recorder.spans[1].attrs == {"level": 1}
    assert recorder.spans[0].duration_s >= 0.0


def test_span_records_error_attr_and_reraises():
    recorder = enable_tracing()
    with pytest.raises(ValueError):
        with span("boom"):
            raise ValueError("no")
    (recorded,) = recorder.spans
    assert recorded.attrs["error"] == "ValueError"


def test_trace_id_context_helpers():
    set_trace_id("cafe0001")
    assert current_trace_id() == "cafe0001"
    assert ensure_trace_id() == "cafe0001"
    fresh = new_trace_id()
    assert len(fresh) == 16 and fresh != new_trace_id()


def test_spans_adopt_ambient_trace_id_even_across_enable():
    set_trace_id("feed0002")
    recorder = enable_tracing()
    with span("joined"):
        pass
    assert recorder.spans[0].trace_id == "feed0002"


def test_wrap_context_carries_trace_into_thread():
    recorder = enable_tracing()
    seen = {}

    def worker():
        seen["trace_id"] = current_trace_id()
        with span("child"):
            pass

    with span("parent") as parent:
        thread = threading.Thread(target=wrap_context(worker))
        thread.start()
        thread.join()
    assert seen["trace_id"] == parent.trace_id
    child = next(s for s in recorder.spans if s.name == "child")
    assert child.parent_id == parent.span_id


def test_traced_decorator_uses_qualname_and_is_free_when_disabled():
    @traced()
    def work():
        return current_span()

    assert work() is None  # disabled: no span opened
    recorder = enable_tracing()
    opened = work()
    assert opened.name.endswith("work")
    assert recorder.spans[0].name == opened.name


def test_add_stage_spans_rebases_timings_as_children():
    recorder = enable_tracing()
    with span("optimize.crawl") as crawl:
        add_stage_spans({"event_times_s": 0.25, "maxflow_s": 0.5,
                         "schedule_s": 0.0, "kernel": "flat"})
    stages = [s for s in recorder.spans if s.name != "optimize.crawl"]
    assert [s.name for s in stages] == ["optimize.event_times",
                                        "optimize.maxflow"]
    assert all(s.parent_id == crawl.span_id for s in stages)
    # back-to-back layout from the parent's start
    assert stages[1].start_s == pytest.approx(crawl.start_s + 0.25)


def test_recorder_bounds_and_counts_drops():
    recorder = TraceRecorder(maxlen=2)
    enable_tracing(recorder)
    for _ in range(4):
        with span("s"):
            pass
    assert len(recorder.spans) == 2
    assert recorder.dropped == 2
    recorder.clear()
    assert recorder.spans == [] and recorder.dropped == 0


# ------------------------------------------------------------------- event log
def test_event_log_stamps_and_drops_none_fields():
    log = EventLog(maxlen=8)
    set_trace_id("beef0003")
    event = log.emit("plan", tenant="acme", empty=None, points=3)
    assert event["kind"] == "plan" and event["seq"] == 1
    assert event["trace_id"] == "beef0003"
    assert "empty" not in event and event["points"] == 3
    assert len(log) == 1


def test_event_log_ring_is_bounded_and_seq_monotone():
    log = EventLog(maxlen=3)
    for i in range(5):
        log.emit("tick", i=i)
    events = log.recent()
    assert [e["i"] for e in events] == [2, 3, 4]
    assert [e["seq"] for e in events] == [3, 4, 5]


def test_event_log_recent_filters_kind_tenant_limit():
    log = EventLog()
    log.emit("rpc", tenant="a")
    log.emit("rpc", tenant="b")
    log.emit("crawl")  # infrastructure-global: untagged
    assert [e["kind"] for e in log.recent(kind="crawl")] == ["crawl"]
    visible = log.recent(tenant="a")
    assert {e.get("tenant") for e in visible} == {"a", None}
    assert len(log.recent(limit=1)) == 1


def test_event_log_jsonl_sink_round_trips(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(jsonl_path=str(path))
    log.emit("plan", tenant="acme")
    log.emit("flight", outcome="warm")
    log.close()
    lines = path.read_text(encoding="utf-8").splitlines()
    parsed = list(iter_jsonl(lines + ["not json", ""]))
    assert [e["kind"] for e in parsed] == ["plan", "flight"]
    assert parsed[0]["seq"] == 1


def test_event_log_sink_self_disables_on_oserror(tmp_path):
    log = EventLog(jsonl_path=str(tmp_path))  # a directory: open() fails
    log.emit("plan")
    assert log.jsonl_path is None  # sink dropped...
    log.emit("plan")
    assert len(log) == 2  # ...ring keeps working


def test_rate_limiter_burst_then_suppressed_summary():
    clock = iter([float(i) * 0.0 for i in range(10)])  # frozen clock
    now = [0.0]
    limiter = RateLimiter(rate=1.0, burst=2.0, clock=lambda: now[0])
    assert limiter.allow() and limiter.allow()
    assert not limiter.allow() and not limiter.allow()
    assert limiter.take_suppressed() == 2
    assert limiter.take_suppressed() == 0
    now[0] = 1.0  # one second refills one token
    assert limiter.allow()
    assert not limiter.allow()
    del clock


def test_rate_limiter_none_rate_always_allows():
    limiter = RateLimiter(rate=None)
    assert all(limiter.allow() for _ in range(100))
    assert limiter.take_suppressed() == 0
    with pytest.raises(ValueError):
        RateLimiter(rate=0.0)


# -------------------------------------------------------------------- export
def test_spans_to_chrome_structure_and_round_trip(tmp_path):
    recorder = enable_tracing()
    with span("outer", exactness="fast"):
        with span("inner"):
            pass
    log = EventLog()
    set_trace_id(recorder.spans[0].trace_id)
    log.emit("flight", outcome="leader")
    path = tmp_path / "trace.json"
    document = save_chrome_trace(str(path), recorder.spans,
                                 log.recent())
    assert document["displayTimeUnit"] == "ms"
    loaded = load_chrome_trace(str(path))
    complete = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in loaded["traceEvents"] if e["ph"] == "i"]
    meta = [e for e in loaded["traceEvents"] if e["ph"] == "M"]
    assert {e["name"] for e in complete} == {"outer", "inner"}
    assert instants[0]["name"] == "flight"
    assert meta and meta[0]["name"] == "thread_name"
    trace_id = recorder.spans[0].trace_id
    assert all(e["args"]["trace_id"] == trace_id for e in complete)
    # json.tool-grade validity (what the CI smoke asserts)
    json.loads(path.read_text(encoding="utf-8"))


def test_load_chrome_trace_accepts_array_and_rejects_junk(tmp_path):
    array = tmp_path / "array.json"
    array.write_text('[{"ph": "X", "name": "a", "ts": 0}]',
                     encoding="utf-8")
    assert load_chrome_trace(str(array))["traceEvents"]
    junk = tmp_path / "junk.json"
    junk.write_text('{"nope": 1}', encoding="utf-8")
    with pytest.raises(ValueError):
        load_chrome_trace(str(junk))


def test_fleet_timeline_to_chrome_tracks_and_instants():
    timeline = [
        {"kind": "job", "job": "job-0", "start_s": 0.0, "end_s": 2.0},
        {"kind": "replan", "t_s": 1.0, "jobs": 1},
        {"kind": "wake", "t_s": 1.5},
    ]
    document = fleet_timeline_to_chrome(timeline)
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    assert complete[0]["name"] == "job-0"
    assert complete[0]["dur"] == pytest.approx(2_000_000.0)
    assert [e["name"] for e in instants] == ["replan", "wake"]


def test_format_trace_tree_and_footer():
    recorder = enable_tracing()
    with span("planner.plan"):
        with span("optimize.crawl"):
            add_stage_spans({"maxflow_s": 0.5})
    text = format_trace(spans_to_chrome(recorder.spans))
    assert "planner.plan" in text
    assert "optimize.maxflow" in text
    assert "trace ids: " + recorder.spans[0].trace_id in text
    assert format_trace({"traceEvents": []}) == "(empty trace)"


# ----------------------------------------------------------------- provenance
def test_provenance_builder_first_note_wins():
    builder = ProvenanceBuilder(tiny_spec())
    builder.note("profile", "built", seconds=1.25, digest="abc")
    builder.note("profile", "disk")  # later notes ignored
    record = builder.finish(strategy="perseus", exactness="exact",
                            kernel="flat", trace_id="feed")
    assert record["stages"]["profile"] == {
        "source": "built", "seconds": 1.25, "key": "abc"}
    assert record["digests"] == {"profile": "abc"}
    assert record["format"] == 1
    assert record["kernel"] == "flat" and record["trace_id"] == "feed"
    assert record["spec"]["model"] == "gpt3-xl"


def test_plan_provenance_cold_then_memory(tmp_path):
    planner = Planner()
    cold = planner.plan(tiny_spec())
    prov = cold.provenance
    assert prov is not None
    assert prov["stages"]["profile"]["source"] == "built"
    assert prov["stages"]["frontier"]["source"] == "built"
    assert prov["stages"]["partition"]["source"] == "built"
    warm = planner.plan(tiny_spec())
    assert warm.provenance["stages"]["profile"]["source"] == "memory"
    assert warm.provenance["stages"]["frontier"]["source"] == "memory"
    assert reports_equal(cold, warm)


def test_plan_provenance_disk_hits_and_persisted_record(tmp_path):
    root = tmp_path / "store"
    first = Planner(cache=root)
    cold = first.plan(tiny_spec())
    assert cold.provenance["stages"]["frontier"]["source"] == "built"
    # A fresh process (here: a fresh planner) over the same store must
    # report the warm stages as disk hits -- the acceptance scenario.
    second = Planner(cache=root)
    warm = second.plan(tiny_spec())
    stages = warm.provenance["stages"]
    assert stages["partition"]["source"] == "disk"
    assert stages["profile"]["source"] == "disk"
    assert stages["frontier"]["source"] == "disk"
    assert reports_equal(cold, warm)
    # The cold run persisted its record beside the store's artifacts,
    # first-writer-wins: it still says "built".
    digest = cold.provenance["digests"]["frontier"]
    persisted = load_provenance(str(root), digest)
    assert persisted is not None
    assert persisted["stages"]["frontier"]["source"] == "built"
    assert cold.provenance["provenance_path"].endswith(
        f"{digest}.json")


def test_provenance_never_travels_on_the_wire():
    planner = Planner()
    report = planner.plan(tiny_spec())
    assert report.provenance is not None
    decoded = report_from_wire(report_to_wire(report))
    assert decoded.provenance is None
    assert reports_equal(report, decoded)


# ------------------------------------------------------------- daemon wiring
def test_daemon_adopts_and_echoes_client_trace_id():
    with PlanningDaemon(planner=Planner(), port=0) as daemon:
        client = ServiceClient(daemon.url, tenant="ci")
        client.ping()
        trace_id = client.last_trace_id
        assert trace_id is not None
        events = client.recent_events()
        rpc = [e for e in events if e["kind"] == "rpc"]
        assert any(e.get("trace_id") == trace_id for e in rpc)


def test_daemon_plan_emits_flight_and_rpc_events():
    with PlanningDaemon(planner=Planner(), port=0) as daemon:
        client = ServiceClient(daemon.url, tenant="ci")
        client.plan(tiny_spec())
        kinds = {e["kind"] for e in client.recent_events()}
        assert "rpc" in kinds and "flight" in kinds
        flights = client.recent_events(kind="flight")
        assert flights and flights[0]["outcome"] in ("leader", "warm")


def test_daemon_recent_events_is_tenant_scoped():
    with PlanningDaemon(planner=Planner(), port=0) as daemon:
        ServiceClient(daemon.url, tenant="alice").ping()
        ServiceClient(daemon.url, tenant="bob").ping()
        seen = ServiceClient(daemon.url, tenant="alice").recent_events()
        tenants = {e.get("tenant") for e in seen if e["kind"] == "rpc"}
        assert "bob" not in tenants
        with pytest.raises(ConfigurationError):
            ServiceClient(daemon.url, tenant="alice").call(
                "recent_events", {"limit": -3})


def test_daemon_access_log_line_carries_trace_id(capfd):
    with PlanningDaemon(planner=Planner(), port=0) as daemon:
        client = ServiceClient(daemon.url, tenant="ci")
        client.ping()
        trace_id = client.last_trace_id
    err = capfd.readouterr().err
    line = next(l for l in err.splitlines()
                if "[repro.serve] rpc method=ping" in l)
    assert f"trace={trace_id}" in line
    assert "tenant=ci" in line and "status=200" in line
    assert "replayed=0" in line


def test_daemon_access_log_can_be_disabled(capfd):
    with PlanningDaemon(planner=Planner(), port=0,
                        access_log=False) as daemon:
        ServiceClient(daemon.url, tenant="ci").ping()
    assert "[repro.serve] rpc" not in capfd.readouterr().err


def test_daemon_jsonl_log_records_the_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    with PlanningDaemon(planner=Planner(), port=0,
                        log_jsonl=str(path)) as daemon:
        client = ServiceClient(daemon.url, tenant="ci")
        client.ping()
        trace_id = client.last_trace_id
    events = list(iter_jsonl(
        path.read_text(encoding="utf-8").splitlines()))
    assert any(e.get("trace_id") == trace_id for e in events)


# ------------------------------------------------- metrics satellites (fixes)
def test_render_labels_escapes_prometheus_reserved_chars():
    rendered = _render_labels(
        (("tenant", 'acme"prod'), ("x", "a\\b"), ("y", "two\nlines")))
    assert rendered == ('{tenant="acme\\"prod",x="a\\\\b",'
                        'y="two\\nlines"}')


def test_metrics_render_survives_quote_bearing_tenant():
    registry = MetricsRegistry()
    registry.inc("repro_service_requests_total",
                 labels={"tenant": 'evil"}\n'})
    text = registry.render()
    line = next(l for l in text.splitlines()
                if l.startswith("repro_service_requests_total{"))
    # one physical line, quotes and newline escaped per the exposition
    # format -- an unescaped tenant used to split the series line
    assert line == ('repro_service_requests_total'
                    '{tenant="evil\\"}\\n"} 1')


def test_histogram_quantile_empty_is_zero():
    h = Histogram(bounds=(1.0, 2.0))
    assert h.quantile(0.5) == 0.0


def test_histogram_quantile_single_bucket_and_extremes():
    h = Histogram(bounds=(1.0, 2.0))
    h.observe(0.5)  # lands in the first bucket
    # q=0's target of 0 is met at the very first bound -- the estimate
    # is coarse by construction (bucket upper bounds, never below)
    assert h.quantile(0.0) == 1.0
    assert h.quantile(0.5) == 1.0
    assert h.quantile(1.0) == 1.0


def test_histogram_quantile_inf_bucket():
    h = Histogram(bounds=(1.0,))
    h.observe(0.5)
    h.observe(50.0)  # beyond every bound: +Inf slot
    assert h.quantile(0.25) == 1.0
    assert h.quantile(1.0) == float("inf")
    assert list(h.cumulative()) == [("1", 1), ("+Inf", 2)]


def test_snapshot_round_trips_labels():
    registry = MetricsRegistry()
    registry.inc("reqs", labels={"tenant": "acme", "method": "plan"})
    registry.inc("reqs")
    registry.set_gauge("inflight", 3.0, labels={"tenant": "acme"})
    registry.observe("latency", 0.01, labels={"tenant": "acme"})
    snap = registry.snapshot()
    assert snap["counters"]["reqs"]["method=plan,tenant=acme"] == 1
    assert snap["counters"]["reqs"]["_total"] == 1
    assert snap["gauges"]["inflight"]["tenant=acme"] == 3.0
    hist = snap["histograms"]["latency"]["tenant=acme"]
    assert hist["count"] == 1 and hist["sum"] == pytest.approx(0.01)
