"""ASCII timeline rendering."""

import pytest

from repro.pipeline.dag import build_pipeline_dag
from repro.pipeline.schedules import schedule_1f1b
from repro.sim.executor import execute
from repro.viz.timeline_ascii import (
    SHADES,
    power_summary,
    render_comparison,
    render_timeline,
)


@pytest.fixture(scope="module")
def execution():
    dag = build_pipeline_dag(schedule_1f1b(3, 3))
    durations = {n: 0.1 for n in dag.nodes}
    powers = {n: 100.0 + 40 * dag.nodes[n].stage for n in dag.nodes}
    return execute(dag, durations, powers, p_blocking_w=60.0)


def test_render_has_one_row_per_stage(execution):
    out = render_timeline(execution, width=60)
    lines = out.splitlines()
    assert len(lines) == 4  # header + 3 stages
    assert lines[1].startswith("S1 |")
    assert lines[3].startswith("S3 |")


def test_rows_have_fixed_width(execution):
    out = render_timeline(execution, width=72)
    lines = out.splitlines()[1:]
    assert len({len(l) for l in lines}) == 1
    for line in lines:
        assert len(line) == len("S1 |") + 72 + 1


def test_blocking_rendered_as_dots(execution):
    out = render_timeline(execution, width=80, show_labels=False)
    # stage 1 idles at the start (waiting for stage 0's forward)
    row_s2 = out.splitlines()[2]
    assert row_s2.split("|")[1].startswith(".")


def test_labels_present_when_wide(execution):
    out = render_timeline(execution, width=120)
    assert "F1" in out
    assert "B3" in out


def test_power_shading_monotone():
    assert SHADES[0] == " "
    assert len(set(SHADES)) == len(SHADES)


def test_render_comparison_reports_savings(execution):
    out = render_comparison(execution, execution, width=50)
    assert "(a)" in out and "(b)" in out
    assert "0.0% saved" in out


def test_power_summary_lines(execution):
    out = power_summary(execution)
    lines = out.splitlines()
    assert len(lines) == 3
    for line in lines:
        assert "busy" in line and "W" in line
