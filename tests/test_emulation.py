"""Large-scale emulation (§6.3): scaling configs and savings trends."""

import pytest

from repro.emulation.largescale import (
    ScalingConfig,
    emulated_breakdown,
    emulated_intrinsic_savings,
    emulated_straggler_savings,
    prepare_emulation,
    t_star_ratio,
    table5_configs,
)
from repro.exceptions import ConfigurationError
from repro.gpu.specs import A100_SXM


@pytest.fixture(scope="module")
def setup_12():
    return prepare_emulation("gpt3-175b", A100_SXM, 12, freq_stride=8,
                             step_target=120)


@pytest.fixture(scope="module")
def setup_24():
    return prepare_emulation("gpt3-175b", A100_SXM, 24, freq_stride=8,
                             step_target=120)


class TestConfigs:
    def test_table5_rows(self):
        configs = table5_configs()
        assert [(c.num_gpus, c.num_pipelines, c.num_microbatches)
                for c in configs] == [
            (1024, 16, 96), (2048, 32, 48), (4096, 64, 24), (8192, 128, 12)
        ]

    def test_strong_scaling_consistency(self):
        """Global batch stays constant across Table 5 rows."""
        configs = table5_configs()
        products = {c.num_pipelines * c.num_microbatches for c in configs}
        assert len(products) == 1  # 16*96 == 32*48 == 64*24 == 128*12

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ScalingConfig(num_gpus=1000, num_pipelines=16, num_microbatches=96)


class TestIntrinsic:
    def test_savings_positive(self, setup_12):
        savings = emulated_intrinsic_savings(setup_12)
        assert 2.0 < savings < 35.0

    def test_fewer_microbatches_more_savings(self, setup_12, setup_24):
        """Table 6: warm-up/flush microbatches can slow to min energy;
        steady-state ones cannot, so savings decrease with M."""
        s12 = emulated_intrinsic_savings(setup_12)
        s24 = emulated_intrinsic_savings(setup_24)
        assert s12 > s24 - 0.5

    def test_t_star_ratio_band(self, setup_12):
        assert 1.05 < t_star_ratio(setup_12) < 1.6


class TestStragglers:
    def test_savings_positive_and_bounded(self, setup_12):
        s = emulated_straggler_savings(setup_12, num_pipelines=16, slowdown=1.2)
        assert 0.0 < s < 40.0

    def test_peak_then_decline(self, setup_12):
        """Figure 8: savings rise until T' ~ T*, then wane."""
        sweep = [
            emulated_straggler_savings(setup_12, 16, s)
            for s in (1.05, 1.2, 1.5)
        ]
        assert max(sweep) >= sweep[-1]

    def test_needs_two_pipelines(self, setup_12):
        with pytest.raises(ConfigurationError):
            emulated_straggler_savings(setup_12, num_pipelines=1, slowdown=1.2)


class TestBreakdown:
    def test_intrinsic_plus_extrinsic(self, setup_12):
        """Figure 7: both components present under a 1.2x straggler."""
        b = emulated_breakdown(setup_12, num_pipelines=16, slowdown=1.2)
        assert b.intrinsic_pct > 0
        assert b.extrinsic_pct > 0
        assert b.total_pct < 45.0

    def test_envpipe_style_plan_has_no_extrinsic(self, setup_12):
        from repro.baselines.envpipe import envpipe_plan

        plan = envpipe_plan(setup_12.dag, setup_12.profile)
        b = emulated_breakdown(
            setup_12, num_pipelines=16, slowdown=1.2, plan_override=plan
        )
        assert b.extrinsic_pct == pytest.approx(0.0, abs=1e-9)
