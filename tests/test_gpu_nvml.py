"""Simulated NVML: clock latency, activity accounting, energy counters."""

import pytest

from repro.exceptions import NVMLError
from repro.gpu.nvml import SimulatedNVML
from repro.gpu.specs import A100_PCIE


@pytest.fixture()
def nvml():
    return SimulatedNVML(A100_PCIE, num_devices=2, clock_apply_latency_s=0.010)


def test_boot_clock_is_max(nvml):
    assert nvml.device(0).sm_clock(0.0) == A100_PCIE.max_freq


def test_clock_lock_applies_after_latency(nvml):
    dev = nvml.device(0)
    dev.lock_sm_clock(900, now=1.0)
    assert dev.sm_clock(1.005) == A100_PCIE.max_freq  # not yet applied
    assert dev.sm_clock(1.011) == 900


def test_clock_must_be_supported(nvml):
    with pytest.raises(NVMLError):
        nvml.device(0).lock_sm_clock(907, now=0.0)  # off-grid


def test_clock_requests_time_ordered(nvml):
    dev = nvml.device(0)
    dev.lock_sm_clock(900, now=5.0)
    with pytest.raises(NVMLError):
        dev.lock_sm_clock(600, now=1.0)


def test_reset_returns_to_max(nvml):
    dev = nvml.device(0)
    dev.lock_sm_clock(600, now=0.0)
    dev.reset_sm_clock(now=1.0)
    assert dev.sm_clock(2.0) == A100_PCIE.max_freq


def test_activity_energy_integration(nvml):
    dev = nvml.device(0)
    dev.record_activity(0.0, 2.0, 200.0)
    assert dev.energy_counter(2.0) == pytest.approx(400.0)


def test_idle_gaps_use_idle_power(nvml):
    dev = nvml.device(0)
    dev.record_activity(1.0, 2.0, 200.0)
    expected = A100_PCIE.idle_w * 1.0 + 200.0 * 1.0 + A100_PCIE.idle_w * 1.0
    assert dev.energy_counter(3.0) == pytest.approx(expected)


def test_energy_counter_windowed(nvml):
    dev = nvml.device(0)
    dev.record_activity(0.0, 4.0, 100.0)
    assert dev.energy_counter(3.0, since=1.0) == pytest.approx(200.0)


def test_overlapping_activity_rejected(nvml):
    dev = nvml.device(0)
    dev.record_activity(0.0, 2.0, 100.0)
    with pytest.raises(NVMLError):
        dev.record_activity(1.0, 3.0, 100.0)


def test_power_draw_inside_and_outside_activity(nvml):
    dev = nvml.device(0)
    dev.record_activity(1.0, 2.0, 250.0)
    assert dev.power_draw(1.5) == pytest.approx(250.0)
    assert dev.power_draw(0.5) == pytest.approx(A100_PCIE.idle_w)


def test_total_energy_sums_devices(nvml):
    nvml.device(0).record_activity(0.0, 1.0, 100.0)
    nvml.device(1).record_activity(0.0, 1.0, 50.0)
    expected = 150.0
    assert nvml.total_energy(1.0) == pytest.approx(expected)


def test_bad_device_index(nvml):
    with pytest.raises(NVMLError):
        nvml.device(7)
