"""Persistent plan store, pluggable cache backends, parallel sweeps.

Covers the guarantees the sweep service is built on: stable
content-addressed keys (v1/v2 spec payloads and homogeneous-tuple vs
single-name specs alias), cross-process reuse with zero re-profiling /
re-characterization and bit-identical frontiers, per-spec error
isolation, and parallel ``sweep(jobs>1)`` equivalence with serial.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.api import PlanSpec, Planner, mixed_cluster_specs
from repro.core.serialization import frontier_to_dict, profile_to_dict
from repro.core.store import (
    FSYNC_ENV,
    MISS,
    MemoryCache,
    PlanStore,
    StoreError,
    stable_key,
)
from repro.exceptions import ConfigurationError
from repro.runtime.server import PerseusServer

#: Tiny/fast planning request reused across the module.
SMALL = PlanSpec("bert-large", gpu="a100", stages=2, microbatches=3,
                 freq_stride=24)
MIXED = PlanSpec("bert-large", gpu=("a100", "a40"), stages=2,
                 microbatches=3, freq_stride=24)


def expensive_work(planner: Planner) -> dict:
    """The stats counters that must stay zero on a warm store."""
    return {k: planner.stats[k]
            for k in ("profile", "stage_profile", "tau", "frontier")}


class TestStableKey:
    def test_deterministic_and_distinct(self):
        a = stable_key(("bert-large", None, 2, "a100"))
        assert a == stable_key(("bert-large", None, 2, "a100"))
        assert a != stable_key(("bert-large", None, 4, "a100"))

    def test_float_exactness(self):
        assert stable_key(0.1 + 0.2) != stable_key(0.3)
        assert stable_key(1.0) != stable_key(1)

    def test_dataclass_content_not_name(self):
        import dataclasses

        from repro.gpu.specs import A100_PCIE

        derated = dataclasses.replace(A100_PCIE, tdp_w=250.0)
        assert stable_key(A100_PCIE) != stable_key(derated)
        assert stable_key(A100_PCIE) == stable_key(
            dataclasses.replace(A100_PCIE)
        )

    def test_unhashable_content_rejected(self):
        with pytest.raises(TypeError):
            stable_key(object())


class TestCacheKeyStability:
    """Satellite: equal specs must address identical store entries."""

    def test_old_version_payloads_hash_identically(self):
        payload_v3 = SMALL.to_dict()
        assert payload_v3["version"] == 3
        payload_v2 = dict(payload_v3, version=2)
        payload_v2.pop("exactness")  # v2 serializers never wrote it
        payload_v1 = dict(payload_v2, version=1)
        planner = Planner()
        keys_v3 = planner.cache_keys(PlanSpec.from_dict(payload_v3))
        keys_v2 = planner.cache_keys(PlanSpec.from_dict(payload_v2))
        keys_v1 = planner.cache_keys(PlanSpec.from_dict(payload_v1))
        assert keys_v1 == keys_v2 == keys_v3

    def test_homogeneous_tuple_matches_single_name(self):
        planner = Planner()
        single = planner.cache_keys(SMALL)
        tupled = planner.cache_keys(SMALL.replace(gpu=("a100", "a100")))
        aliased = planner.cache_keys(SMALL.replace(gpu="a100-pcie"))
        assert tupled == single
        assert aliased == single
        # and planning did not re-profile for the aliases
        assert planner.stats["profile"] == 1

    def test_mixed_tuple_gets_its_own_keys(self):
        planner = Planner()
        assert planner.cache_keys(MIXED) != planner.cache_keys(SMALL)

    def test_same_keys_across_planner_instances(self):
        assert Planner().cache_keys(SMALL) == Planner().cache_keys(SMALL)


class TestMemoryCache:
    def test_miss_is_not_none(self):
        cache = MemoryCache()
        assert cache.get("ns", ("k",)) is MISS
        cache.put("ns", ("k",), None)
        assert cache.get("ns", ("k",)) is None

    def test_merge_prefers_own_entries(self):
        a, b = MemoryCache(), MemoryCache()
        a.put("ns", "k", "mine")
        b.put("ns", "k", "theirs")
        b.put("ns", "k2", "new")
        a.merge(b)
        assert a.get("ns", "k") == "mine"
        assert a.get("ns", "k2") == "new"

    def test_worker_view_is_isolated_but_warm(self):
        a = MemoryCache()
        a.put("ns", "k", "v")
        view = a.worker_view()
        assert view.get("ns", "k") == "v"
        view.put("ns", "k2", "w")
        assert a.get("ns", "k2") is MISS


class TestPlanStore:
    def test_persists_across_instances(self, tmp_path):
        first = Planner(cache=tmp_path / "store")
        report = first.plan(SMALL)
        assert expensive_work(first) == {"profile": 1, "stage_profile": 0,
                                         "tau": 1, "frontier": 1}

        second = Planner(cache=tmp_path / "store")
        warm = second.plan(SMALL)
        assert expensive_work(second) == {"profile": 0, "stage_profile": 0,
                                          "tau": 0, "frontier": 0}
        assert warm.plan == report.plan
        assert warm.iteration_time_s == report.iteration_time_s
        assert warm.energy_j == report.energy_j

    def test_warm_frontier_is_bit_identical(self, tmp_path):
        cold = Planner(cache=tmp_path / "store")
        warm = Planner(cache=tmp_path / "store")
        a = frontier_to_dict(cold.frontier_for(SMALL))
        b = frontier_to_dict(warm.frontier_for(SMALL))
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert warm.stats["frontier"] == 0
        assert warm.cache.counters["disk_hits"] > 0

    def test_warm_profile_is_bit_identical(self, tmp_path):
        cold = Planner(cache=tmp_path / "store")
        warm = Planner(cache=tmp_path / "store")
        a = profile_to_dict(cold.result(MIXED).profile)
        b = profile_to_dict(warm.result(MIXED).profile)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_mixed_specs_share_persisted_stage_sweeps(self, tmp_path):
        cold = Planner(cache=tmp_path / "store")
        cold.result(MIXED)
        assert cold.stats["stage_profile"] > 0

        warm = Planner(cache=tmp_path / "store")
        # A *different* mix over the same devices and partition slices
        # must warm-start entirely from the persisted per-stage sweeps.
        warm.result(MIXED)
        assert warm.stats["stage_profile"] == 0

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        root = tmp_path / "store"
        planner = Planner(cache=root)
        planner.plan(SMALL)
        for name in os.listdir(root / "profile"):
            (root / "profile" / name).write_text("{not json", "utf-8")
        recovered = Planner(cache=root)
        recovered.plan(SMALL)
        assert recovered.stats["profile"] == 1  # recomputed, no crash

    def test_corrupt_entry_is_repaired_not_recomputed_forever(self, tmp_path):
        root = tmp_path / "store"
        Planner(cache=root).plan(SMALL)
        for name in os.listdir(root / "profile"):
            (root / "profile" / name).write_text("{not json", "utf-8")
        Planner(cache=root).plan(SMALL)  # recomputes AND rewrites the file
        healed = Planner(cache=root)
        healed.plan(SMALL)
        assert healed.stats["profile"] == 0

    def test_layout_mismatch_raises(self, tmp_path):
        root = tmp_path / "store"
        PlanStore(root)
        (root / "store-format.json").write_text(
            json.dumps({"kind": "plan_store", "layout_version": 99}), "utf-8"
        )
        with pytest.raises(StoreError, match="layout"):
            PlanStore(root)

    def test_clear_keeps_disk(self, tmp_path):
        planner = Planner(cache=tmp_path / "store")
        planner.plan(SMALL)
        planner.clear()
        planner.plan(SMALL)
        assert planner.stats["profile"] == 1  # second pass hit the disk

    def test_cache_argument_forms(self, tmp_path):
        assert isinstance(Planner().cache, MemoryCache)
        assert isinstance(Planner(cache=str(tmp_path / "s")).cache, PlanStore)
        shared = PlanStore(tmp_path / "s2")
        assert Planner(cache=shared).cache is shared
        with pytest.raises(TypeError):
            Planner(cache=42)


class TestSweepErrorIsolation:
    """Satellite: one bad spec must not abort a batch."""

    def test_bad_spec_reports_instead_of_raising(self):
        planner = Planner()
        rows = planner.sweep([
            SMALL,
            SMALL.replace(strategy="not-a-strategy"),
            SMALL.replace(model="not-a-model"),
            SMALL.replace(strategy="envpipe"),
        ])
        assert [r.ok for r in rows] == [True, False, False, True]
        assert "not-a-strategy" in rows[1].error
        assert "not-a-model" in rows[2].error
        assert rows[1].iteration_time_s != rows[1].iteration_time_s  # NaN
        assert rows[1].to_dict()["error"] == rows[1].error

    def test_error_rows_serialize_to_strict_json(self):
        rows = Planner().sweep([SMALL.replace(strategy="not-a-strategy")])

        def reject(_):
            raise ValueError("non-finite constant in payload")

        payload = json.dumps([r.to_dict() for r in rows])
        parsed = json.loads(payload, parse_constant=reject)  # no NaN/Inf
        assert parsed[0]["iteration_time_s"] is None
        assert parsed[0]["error"]

    def test_errors_raise_restores_fail_fast(self):
        with pytest.raises(ConfigurationError):
            Planner().sweep([SMALL.replace(model="not-a-model")],
                            errors="raise")

    def test_bad_errors_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            Planner().sweep([SMALL], errors="ignore")


class TestParallelSweep:
    SPECS = [SMALL.replace(strategy=s)
             for s in ("perseus", "envpipe", "max-freq", "min-energy")]
    SPECS += [SMALL.replace(microbatches=4), MIXED,
              SMALL.replace(strategy="broken")]

    def test_parallel_rows_match_serial(self):
        serial = Planner().sweep(self.SPECS)
        parallel = Planner().sweep(self.SPECS, jobs=3)
        # error rows carry NaN scalars (NaN != NaN), so compare them by
        # their error text and everything else by full row equality
        assert [r.ok for r in parallel] == [r.ok for r in serial]
        assert [r.error for r in parallel] == [r.error for r in serial]
        assert [r for r in parallel if r.ok] == [r for r in serial if r.ok]

    def test_parallel_merges_back_into_shared_cache(self):
        planner = Planner()
        planner.sweep(self.SPECS, jobs=2)
        merged_profiles = planner.stats["profile"]
        planner.plan(SMALL)  # must be served from the merged cache
        assert planner.stats["profile"] == merged_profiles

    def test_jobs_one_is_serial(self):
        planner = Planner()
        assert planner.sweep([SMALL], jobs=1)[0].ok

    def test_post_sweep_characterization_records_in_parent(self):
        # Frontier-free strategies leave the merged optimizer lazy; a
        # later characterization must land in *this* planner's backend
        # and stats, not the discarded worker's.
        planner = Planner()
        planner.sweep([SMALL.replace(strategy="max-freq"),
                       SMALL.replace(strategy="min-energy")], jobs=2)
        assert planner.stats["frontier"] == 0
        planner.frontier_for(SMALL)
        assert planner.stats["frontier"] == 1
        assert len(list(planner.cache.items("frontier"))) == 1

    def test_parallel_with_shared_store(self, tmp_path):
        Planner(cache=tmp_path / "store").sweep(self.SPECS[:4], jobs=2)
        warm = Planner(cache=tmp_path / "store")
        warm.sweep(self.SPECS[:4], jobs=2)
        assert expensive_work(warm) == {"profile": 0, "stage_profile": 0,
                                        "tau": 0, "frontier": 0}


class TestMixedClusterSpecsValidation:
    """Satellite: GPU names are validated eagerly, with helpful errors."""

    def test_unknown_pool_name_fails_fast(self):
        with pytest.raises(ConfigurationError) as err:
            mixed_cluster_specs(SMALL, ["a100", "a41"])
        assert "a41" in str(err.value)
        assert "known" in str(err.value)  # lists the registry

    def test_unknown_per_stage_name_reports_stage(self):
        with pytest.raises(ConfigurationError, match="stage 1"):
            mixed_cluster_specs(SMALL, [["a100"], ["h1000"]])

    def test_valid_pool_still_expands(self):
        specs = mixed_cluster_specs(SMALL, ["a100", "a40"])
        assert len(specs) == 4  # 2 choices ** 2 stages


class TestServerSweep:
    def test_submit_sweep_registers_and_serves_rows(self, tmp_path):
        deployed = []
        server = PerseusServer(deploy_callback=lambda j, p: deployed.append(j))
        planner = Planner(cache=tmp_path / "store")
        specs = [SMALL, SMALL.replace(strategy="envpipe"),
                 SMALL.replace(model="not-a-model")]
        rows = server.submit_sweep(specs, planner=planner, prefix="batch")
        assert list(rows) == ["batch-0", "batch-1", "batch-2"]
        assert [r.ok for r in rows.values()] == [True, True, False]
        # only the healthy Perseus spec is deployable
        assert deployed == ["batch-0"]
        assert server.frontier_of("batch-0").t_min > 0
        assert server.report_of("batch-2").error is not None
        assert server.sweep_reports() == rows
        # the whole batch characterized exactly one frontier
        assert planner.stats["frontier"] == 1

    def test_submit_sweep_reuses_cached_frontiers(self, tmp_path):
        Planner(cache=tmp_path / "store").frontier_for(SMALL)
        planner = Planner(cache=tmp_path / "store")
        server = PerseusServer()
        server.submit_sweep([SMALL], planner=planner)
        assert planner.stats["frontier"] == 0  # adopted, not re-crawled

    def test_duplicate_prefix_rejected(self):
        from repro.exceptions import ServerError

        server = PerseusServer()
        server.submit_sweep([SMALL])
        with pytest.raises(ServerError, match="prefix"):
            server.submit_sweep([SMALL])

    def test_register_spec_adopts_planner_frontier(self, tmp_path):
        planner = Planner(cache=tmp_path / "store")
        planner.frontier_for(SMALL)
        warm = Planner(cache=tmp_path / "store")
        server = PerseusServer()
        server.register_spec("job", SMALL, planner=warm, blocking=True)
        assert warm.stats["frontier"] == 0
        assert server.frontier_of("job").t_min > 0


class TestTwoProcessDemo:
    """Acceptance: a second *process* reuses everything bit-for-bit."""

    CMD = ["sweep", "bert-large", "--stages", "2", "--microbatches", "3",
           "--freq-stride", "24", "--strategies", "perseus,envpipe"]

    def _run(self, cache_dir, extra=()):
        return subprocess.run(
            [sys.executable, "-m", "repro"] + self.CMD
            + ["--cache-dir", str(cache_dir)] + list(extra),
            capture_output=True, text=True,
            env=dict(os.environ,
                     PYTHONPATH=os.path.join(os.path.dirname(__file__),
                                             os.pardir, "src")),
            check=True,
        )

    def test_second_process_does_zero_expensive_work(self, tmp_path):
        store = tmp_path / "store"
        first = self._run(store, ["--format", "json",
                                  "-o", str(tmp_path / "a.json")])
        assert "profiles=1" in first.stdout
        second = self._run(store, ["--format", "json",
                                   "-o", str(tmp_path / "b.json")])
        assert "profiles=0 stage_sweeps=0 taus=0 frontiers=0" in second.stdout
        a = json.loads((tmp_path / "a.json").read_text("utf-8"))
        b = json.loads((tmp_path / "b.json").read_text("utf-8"))
        assert a == b  # bit-identical rows across processes


class TestProcessSweep:
    """jobs>1 + PlanStore = multi-process sweep (workers publish via the
    store, the parent adopts)."""

    SPECS = [SMALL.replace(strategy=s)
             for s in ("perseus", "max-freq", "broken")]

    def test_process_rows_match_serial(self, tmp_path):
        serial = Planner().sweep(self.SPECS)
        store_planner = Planner(cache=tmp_path / "store")
        assert isinstance(store_planner.cache, PlanStore)
        rows = store_planner.sweep(self.SPECS, jobs=2)
        assert [r.ok for r in rows] == [r.ok for r in serial]
        assert [r.error for r in rows] == [r.error for r in serial]
        for ours, ref in zip(rows, serial):
            if ours.ok:
                assert ours.iteration_time_s == ref.iteration_time_s
                assert ours.energy_j == ref.energy_j
                assert ours.plan == ref.plan

    def test_worker_work_is_accounted_and_persisted(self, tmp_path):
        planner = Planner(cache=tmp_path / "store")
        planner.sweep(self.SPECS, jobs=2)
        # The expensive work happened (in the workers) exactly once ...
        assert planner.stats["profile"] == 1
        assert planner.stats["frontier"] == 1
        # ... and landed on disk, so a fresh planner warm-starts.
        warm = Planner(cache=tmp_path / "store")
        warm.sweep(self.SPECS, jobs=2)
        assert expensive_work(warm) == {"profile": 0, "stage_profile": 0,
                                        "tau": 0, "frontier": 0}


class TestEviction:
    def _fill(self, root):
        """A store with real artifacts on disk."""
        planner = Planner(cache=root)
        planner.frontier_for(SMALL)
        store = planner.cache
        assert store.disk_bytes() > 0
        return store

    def test_gc_prunes_lru_by_mtime_down_to_cap(self, tmp_path):
        store = self._fill(tmp_path / "store")
        entries = store._disk_entries()
        assert len(entries) >= 3
        # Age two entries far into the past; they must be pruned first.
        paths = sorted(path for _, _, path in entries)
        old = paths[:2]
        for i, path in enumerate(old):
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        total = store.disk_bytes()
        old_bytes = sum(os.path.getsize(p) for p in old)
        result = store.gc(total - old_bytes)
        assert result["removed"] == 2
        assert result["freed_bytes"] == old_bytes
        assert not any(os.path.exists(p) for p in old)

    def test_gc_zero_clears_everything(self, tmp_path):
        store = self._fill(tmp_path / "store")
        result = store.gc(0)
        assert result["kept_bytes"] == 0
        assert store.disk_bytes() == 0
        # the layout stamp survives: the directory is still a valid store
        assert os.path.exists(os.path.join(store.root, "store-format.json"))

    def test_max_bytes_cap_prunes_on_write(self, tmp_path):
        store = self._fill(tmp_path / "uncapped")
        footprint = store.disk_bytes()
        capped = Planner(cache=PlanStore(tmp_path / "capped",
                                         max_bytes=footprint // 2))
        capped.frontier_for(SMALL)
        assert capped.cache.disk_bytes() <= footprint // 2

    def test_gc_without_cap_is_an_error(self, tmp_path):
        store = PlanStore(tmp_path / "store")
        with pytest.raises(StoreError):
            store.gc()
        with pytest.raises(StoreError):
            store.gc(-1)

    def test_disk_hits_refresh_recency(self, tmp_path):
        store = self._fill(tmp_path / "store")
        entries = sorted(store._disk_entries())
        _, _, oldest = entries[0]
        os.utime(oldest, (1, 1))
        fresh = PlanStore(store.root)  # cold memory tier, hits disk
        planner = Planner(cache=fresh)
        planner.frontier_for(SMALL)
        newest_mtime = os.path.getmtime(oldest)
        assert newest_mtime > 1  # the read refreshed the file's recency

    def test_worker_view_carries_no_cap(self, tmp_path):
        store = PlanStore(tmp_path / "store", max_bytes=123)
        assert store.worker_view().max_bytes is None


class TestParseSize:
    def test_suffixes(self):
        from repro.core.store import parse_size

        assert parse_size("1024") == 1024
        assert parse_size("2K") == 2048
        assert parse_size("1.5M") == int(1.5 * 1024 ** 2)
        assert parse_size("1G") == 1024 ** 3
        assert parse_size("200MB") == 200 * 1024 ** 2
        assert parse_size(42) == 42

    def test_rejects_garbage(self):
        from repro.core.store import parse_size

        with pytest.raises(StoreError):
            parse_size("lots")
        with pytest.raises(StoreError):
            parse_size("-1M")


class TestStoreGcLocking:
    """Regression: ``gc`` vs a concurrent writer / second gc.

    Before the store-level lockfile, an eviction scan could unlink a
    file whose ``os.replace`` was mid-flight in another process, and
    two concurrent gcs raced one mtime ordering.  ``put`` now holds the
    shared :func:`repro.core.store.store_lock` while ``gc`` holds it
    exclusive -- proven here with real second processes.
    """

    HOLD_SHARED = (
        "import sys, time\n"
        "from repro.core.store import store_lock\n"
        "with store_lock(sys.argv[1], exclusive=False):\n"
        "    print('HELD', flush=True)\n"
        "    time.sleep(float(sys.argv[2]))\n"
        "print('RELEASED', flush=True)\n"
    )

    GC_ONCE = (
        "import json, sys\n"
        "from repro.core.store import PlanStore\n"
        "print(json.dumps(PlanStore(sys.argv[1]).gc(0)), flush=True)\n"
    )

    def _fill(self, root):
        planner = Planner(cache=root)
        planner.frontier_for(SMALL)
        store = planner.cache
        assert store.disk_bytes() > 0
        return store

    def _spawn(self, code, *args):
        return subprocess.Popen(
            [sys.executable, "-c", code, *map(str, args)],
            stdout=subprocess.PIPE, text=True,
            env=dict(os.environ,
                     PYTHONPATH=os.path.join(os.path.dirname(__file__),
                                             os.pardir, "src")),
        )

    def test_gc_blocks_while_a_writer_holds_the_store(self, tmp_path):
        import time

        store = self._fill(tmp_path / "store")
        writer = self._spawn(self.HOLD_SHARED, store.root, 1.0)
        try:
            assert writer.stdout.readline().strip() == "HELD"
            started = time.monotonic()
            result = store.gc(0)
            elapsed = time.monotonic() - started
        finally:
            writer.wait(timeout=30.0)
        # gc could not start until the writer's shared lock was
        # released -- the unlink scan can never interleave with a put.
        assert elapsed >= 0.8
        assert result["kept_bytes"] == 0
        assert store.disk_bytes() == 0

    def test_two_process_gcs_never_double_prune(self, tmp_path):
        store = self._fill(tmp_path / "store")
        n_entries = len(store._disk_entries())
        assert n_entries >= 3
        other = self._spawn(self.GC_ONCE, store.root)
        try:
            mine = store.gc(0)
            theirs = json.loads(other.stdout.readline())
        finally:
            other.wait(timeout=60.0)
        # Exclusive locking serializes the two scans: every entry is
        # unlinked (and counted) exactly once between the two processes.
        assert mine["removed"] + theirs["removed"] == n_entries
        assert store.disk_bytes() == 0
        # and the store is still a valid, usable root afterwards
        recovered = Planner(cache=store.root)
        recovered.plan(SMALL)
        assert recovered.stats["profile"] == 1


class TestCacheGcCli:
    def test_gc_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        planner = Planner(cache=tmp_path / "store")
        planner.frontier_for(SMALL)
        assert main(["cache", "gc", "--cache-dir", str(tmp_path / "store"),
                     "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert planner.cache.disk_bytes() == 0

    def test_gc_needs_a_store(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "gc", "--max-bytes", "1M"]) == 2
        assert "cache gc needs a store" in capsys.readouterr().err


class TestCrashDurability:
    """``_atomic_write`` fsync discipline and torn-write recovery.

    A crash between ``os.replace`` reaching disk and the payload data
    doing so leaves a zero-length (or truncated) file under the final
    name.  The store must treat any such payload exactly like the
    garbage-bytes case above: a recorded miss that heals on rewrite,
    never a crash at read time.
    """

    def test_truncated_payload_is_a_miss_and_heals(self, tmp_path):
        root = tmp_path / "store"
        Planner(cache=root).plan(SMALL)
        for name in os.listdir(root / "frontier"):
            (root / "frontier" / name).write_text("", "utf-8")
        recovered = Planner(cache=root)
        recovered.plan(SMALL)
        assert recovered.stats["frontier"] == 1  # recomputed, no crash
        healed = Planner(cache=root)  # the recompute rewrote the file
        healed.plan(SMALL)
        assert healed.stats["frontier"] == 0

    def test_half_written_payload_is_a_miss(self, tmp_path):
        root = tmp_path / "store"
        Planner(cache=root).plan(SMALL)
        for name in os.listdir(root / "frontier"):
            path = root / "frontier" / name
            text = path.read_text("utf-8")
            path.write_text(text[: len(text) // 2], "utf-8")
        recovered = Planner(cache=root)
        recovered.plan(SMALL)
        assert recovered.stats["frontier"] == 1

    def test_fsyncs_file_and_directory_by_default(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.delenv(FSYNC_ENV, raising=False)
        store = PlanStore(tmp_path / "store")  # init writes its format file
        real_fsync = os.fsync
        fds = []

        def counting(fd):
            fds.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting)
        path = tmp_path / "store" / "frontier" / "x.json"
        store._atomic_write(str(path), "{}")
        assert len(fds) == 2  # the temp file, then the parent dir
        assert path.read_text("utf-8") == "{}"

    def test_fsync_env_opts_out(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FSYNC_ENV, "0")
        monkeypatch.setattr(os, "fsync",
                            lambda fd: pytest.fail("fsync despite opt-out"))
        store = PlanStore(tmp_path / "store")
        path = tmp_path / "store" / "frontier" / "x.json"
        store._atomic_write(str(path), "{}")
        assert path.read_text("utf-8") == "{}"

    def test_interrupted_write_keeps_old_value_and_no_temp(self, tmp_path,
                                                           monkeypatch):
        store = PlanStore(tmp_path / "store")
        path = tmp_path / "store" / "frontier" / "x.json"
        store._atomic_write(str(path), '{"old": true}')

        def torn(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", torn)
        with pytest.raises(OSError, match="simulated crash"):
            store._atomic_write(str(path), '{"new": true}')
        monkeypatch.undo()
        assert json.loads(path.read_text("utf-8")) == {"old": True}
        leftovers = [n for n in os.listdir(path.parent)
                     if n.endswith(".tmp")]
        assert leftovers == []
