"""The planning service: coalescing, admission, tenancy, wire fidelity.

Unit layers (token bucket, single-flight, metrics, wire codecs) run
with injected clocks and plain callables; the integration layers boot a
real :class:`~repro.service.PlanningDaemon` on an ephemeral loopback
port and talk to it through :class:`~repro.service.ServiceClient` --
including the issue's headline scenario: N tenants concurrently
planning overlapping specs must produce bit-identical reports while the
shared planner does each piece of expensive work exactly once.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.api import PlanSpec, Planner
from repro.exceptions import (
    ConfigurationError,
    QuotaExceeded,
    ReproError,
    ServerError,
    ServiceError,
    ServiceOverloaded,
)
from repro.runtime.server import PerseusServer
from repro.service import (
    AdmissionController,
    MetricsRegistry,
    PlanningDaemon,
    ServiceClient,
    SingleFlight,
    TokenBucket,
    report_from_wire,
    report_to_wire,
    reports_equal,
    spec_from_wire,
    stack_flight_key,
)
from repro.service.wire import error_from_wire, error_to_wire

TINY = dict(gpu="a100", stages=2, microbatches=2, freq_stride=24)


def tiny_spec(model="gpt3-xl", **overrides):
    merged = dict(TINY)
    merged.update(overrides)
    return PlanSpec(model, **merged)


@pytest.fixture()
def daemon():
    """A live daemon on an ephemeral port with its own planner."""
    with PlanningDaemon(planner=Planner(), port=0) as d:
        yield d


# ---------------------------------------------------------------- token bucket
class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def test_token_bucket_burst_then_rejects():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
    assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
    wait = bucket.try_acquire()
    assert wait == pytest.approx(1.0)


def test_token_bucket_refills_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
    bucket.try_acquire()
    bucket.try_acquire()
    assert bucket.try_acquire() > 0.0
    clock.now += 0.5  # one token at 2/s
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == pytest.approx(0.5)


def test_token_bucket_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
    clock.now += 1000.0
    assert bucket.tokens == pytest.approx(2.0)


def test_token_bucket_validates():
    with pytest.raises(ConfigurationError):
        TokenBucket(rate=0.0, burst=2.0)
    with pytest.raises(ConfigurationError):
        TokenBucket(rate=1.0, burst=0.5)


# ------------------------------------------------------------------- admission
def test_admission_bounds_inflight():
    ctrl = AdmissionController(max_inflight=2)
    with ctrl.admit("a"):
        with ctrl.admit("b"):
            assert ctrl.inflight == 2
            with pytest.raises(ServiceOverloaded):
                with ctrl.admit("c"):
                    pass
        assert ctrl.inflight == 1
    assert ctrl.inflight == 0


def test_admission_releases_slot_on_error():
    ctrl = AdmissionController(max_inflight=1)
    with pytest.raises(RuntimeError):
        with ctrl.admit("a"):
            raise RuntimeError("boom")
    with ctrl.admit("a"):  # slot was released
        pass


def test_admission_quota_is_per_tenant():
    clock = FakeClock()
    ctrl = AdmissionController(max_inflight=None, quota_rate=1.0,
                               quota_burst=1.0, clock=clock)
    with ctrl.admit("greedy"):
        pass
    with pytest.raises(QuotaExceeded) as err:
        with ctrl.admit("greedy"):
            pass
    assert err.value.retry_after_s > 0.0
    with ctrl.admit("polite"):  # a different tenant's fresh bucket
        pass


def test_admission_unlimited_when_disabled():
    ctrl = AdmissionController(max_inflight=None, quota_rate=None)
    for _ in range(32):
        with ctrl.admit("t"):
            pass
    assert ctrl.bucket_for("t") is None


# --------------------------------------------------------------- single flight
def test_single_flight_serial_calls_each_lead():
    flight = SingleFlight()
    assert flight.do("k", lambda: 1) == (1, "leader")
    assert flight.do("k", lambda: 2) == (2, "leader")
    assert flight.stats == {"leaders": 2, "followers": 0}


def test_single_flight_concurrent_dedup():
    flight = SingleFlight()
    release = threading.Event()
    followers_in = threading.Barrier(4)
    calls = []

    def build():
        calls.append(1)
        release.wait(5.0)
        return "built"

    results = []

    def worker():
        followers_in.wait()
        results.append(flight.do("k", build))

    threads = [threading.Thread(target=worker) for _ in range(3)]
    for t in threads:
        t.start()
    followers_in.wait()  # all workers racing on the same key
    while flight.inflight == 0:  # leader registered its flight
        pass
    release.set()
    for t in threads:
        t.join(5.0)
    assert len(calls) == 1
    assert sorted(role for _, role in results) == \
        ["follower", "follower", "leader"]
    assert all(value == "built" for value, _ in results)


def test_single_flight_propagates_leader_error_to_followers():
    flight = SingleFlight()
    started = threading.Event()
    release = threading.Event()

    def explode():
        started.set()
        release.wait(5.0)
        raise ServerError("leader failed")

    caught = []

    def lead():
        try:
            flight.do("k", explode)
        except ServerError as exc:
            caught.append(("leader", str(exc)))

    def follow():
        started.wait(5.0)
        try:
            flight.do("k", lambda: "unused")
        except ServerError as exc:
            caught.append(("follower", str(exc)))

    t1 = threading.Thread(target=lead)
    t2 = threading.Thread(target=follow)
    t1.start()
    started.wait(5.0)
    t2.start()
    while flight.inflight == 0:
        pass
    release.set()
    t1.join(5.0)
    t2.join(5.0)
    assert sorted(who for who, _ in caught) == ["follower", "leader"]
    assert all(msg == "leader failed" for _, msg in caught)


def test_stack_flight_key_groups_on_expensive_fields():
    base = tiny_spec()
    assert stack_flight_key(base) == \
        stack_flight_key(base.replace(strategy="max-freq"))
    assert stack_flight_key(base) == stack_flight_key(base.replace(tau=0.02))
    assert stack_flight_key(base) == \
        stack_flight_key(base.replace(microbatches=3))
    assert stack_flight_key(base) != \
        stack_flight_key(base.replace(model="bert-large"))
    assert stack_flight_key(base) != stack_flight_key(base.replace(stages=4))


# --------------------------------------------------------------------- metrics
def test_metrics_counters_and_labels():
    reg = MetricsRegistry()
    reg.inc("hits", {"tier": "memory"})
    reg.inc("hits", {"tier": "memory"})
    reg.inc("hits", {"tier": "disk"})
    assert reg.counter_value("hits", {"tier": "memory"}) == 2
    assert reg.counter_total("hits") == 3


def test_metrics_histogram_buckets_are_cumulative():
    reg = MetricsRegistry(latency_buckets_s=(0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 5.0):
        reg.observe("lat", v)
    text = reg.render()
    assert 'lat_bucket{le="0.1"} 1' in text
    assert 'lat_bucket{le="1"} 3' in text
    assert 'lat_bucket{le="+Inf"} 4' in text
    assert "lat_count 4" in text


def test_metrics_render_has_type_headers_and_help():
    reg = MetricsRegistry()
    reg.describe("reqs", "requests served")
    reg.inc("reqs", {"method": "plan"})
    reg.set_gauge("depth", 3)
    text = reg.render(extra_lines=["# TYPE extra counter", "extra 1"])
    assert "# HELP reqs requests served" in text
    assert "# TYPE reqs counter" in text
    assert 'reqs{method="plan"} 1' in text
    assert "# TYPE depth gauge" in text
    assert "depth 3" in text
    assert text.rstrip().endswith("extra 1")


def test_metrics_quantiles_from_histogram():
    reg = MetricsRegistry(latency_buckets_s=(0.01, 0.1, 1.0))
    for _ in range(95):
        reg.observe("lat", 0.005)
    for _ in range(5):
        reg.observe("lat", 0.5)
    snap = reg.snapshot()["histograms"]["lat"]["_total"]
    assert snap["p50_s"] == 0.01
    assert snap["p95_s"] == 0.01
    assert snap["count"] == 100


# ------------------------------------------------------------------------ wire
def test_report_wire_round_trip_bit_identical():
    planner = Planner()
    report = planner.plan(tiny_spec())
    back = report_from_wire(report_to_wire(report))
    assert reports_equal(report, back)
    assert back.plan == report.plan
    assert back.spec == report.spec


def test_report_wire_round_trip_error_row():
    planner = Planner()
    rows = planner.sweep([tiny_spec(model="no-such-model")],
                         errors="report")
    assert not rows[0].ok
    back = report_from_wire(report_to_wire(rows[0]))
    assert reports_equal(rows[0], back)
    assert math.isnan(back.energy_j)
    assert back.error == rows[0].error


def test_spec_from_wire_fills_envelope_defaults():
    spec = spec_from_wire({"model": "gpt3-xl", "gpu": "a100",
                           "stages": 2, "microbatches": 2})
    assert spec.model == "gpt3-xl"
    assert spec.strategy == "perseus"
    with pytest.raises(ConfigurationError):
        spec_from_wire("not-an-object")


def test_error_wire_round_trip():
    err = error_from_wire(error_to_wire(QuotaExceeded("slow down",
                                                      retry_after_s=2.5)))
    assert isinstance(err, QuotaExceeded)
    assert err.retry_after_s == 2.5
    degraded = error_from_wire({"kind": "SomethingNovel", "message": "x"})
    assert isinstance(degraded, ServiceError)


# ------------------------------------------------- server satellites (no HTTP)
def test_wait_ready_wakes_on_event_without_polling():
    server = PerseusServer(planner=Planner())
    spec = tiny_spec()
    server.register_spec("bg", spec, blocking=False)
    frontier = server.wait_ready("bg", timeout_s=60.0)
    assert frontier.points
    assert server.is_ready("bg")


def test_wait_ready_unknown_job_raises():
    server = PerseusServer(planner=Planner())
    with pytest.raises(ServerError):
        server.wait_ready("never-registered", timeout_s=0.05)


def test_duplicate_registration_rejected():
    server = PerseusServer(planner=Planner())
    spec = tiny_spec()
    server.register_spec("dup", spec, blocking=True)
    with pytest.raises(ServerError, match="already registered"):
        server.register_spec("dup", spec, blocking=True)


def test_duplicate_registration_race_single_winner():
    planner = Planner()
    server = PerseusServer(planner=planner)
    spec = tiny_spec()
    planner.result(spec)  # pre-warm so the race is on the registry
    barrier = threading.Barrier(4)
    outcomes = []

    def register():
        barrier.wait()
        try:
            server.register_spec("contested", spec, blocking=True)
            outcomes.append("won")
        except ServerError:
            outcomes.append("lost")

    threads = [threading.Thread(target=register) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30.0)
    assert sorted(outcomes) == ["lost", "lost", "lost", "won"]
    assert server.job_ids() == ["contested"]


# ----------------------------------------------------------- daemon round trip
def test_daemon_plan_bit_identical_to_in_process(daemon):
    spec = tiny_spec()
    client = ServiceClient(daemon.url, tenant="team-a")
    remote = client.plan(spec)
    local = Planner().plan(spec)
    assert reports_equal(remote, local)


def test_daemon_job_lifecycle(daemon):
    spec = tiny_spec()
    client = ServiceClient(daemon.url, tenant="team-a")
    client.register_spec("job", spec)
    assert client.is_ready("job")
    frontier = client.wait_ready("job", timeout_s=60.0)
    assert frontier.points
    schedule = client.current_schedule("job")
    # The energy-optimal operating point lies on the frontier.
    assert frontier.t_min <= schedule.iteration_time <= frontier.t_star
    client.set_straggler("job", accelerator_id=0, delay_s=1.0, degree=1.2)
    slowed = client.current_schedule("job")
    assert slowed.iteration_time >= schedule.iteration_time
    assert client.jobs() == ["job"]


def test_daemon_sweep_and_reports(daemon):
    client = ServiceClient(daemon.url, tenant="team-a")
    rows = client.submit_sweep(
        [tiny_spec(), tiny_spec(strategy="max-freq")], prefix="sw")
    assert sorted(rows) == ["sw-0", "sw-1"]
    assert reports_equal(client.report_of("sw-0"), rows["sw-0"])
    assert sorted(client.sweep_reports()) == ["sw-0", "sw-1"]


def test_daemon_tenant_isolation(daemon):
    spec = tiny_spec()
    a = ServiceClient(daemon.url, tenant="team-a")
    b = ServiceClient(daemon.url, tenant="team-b")
    a.register_spec("shared-name", spec)
    b.register_spec("shared-name", spec)  # no collision across tenants
    a.submit_sweep([spec], prefix="sw")
    assert a.jobs() == ["shared-name", "sw-0"]
    assert b.jobs() == ["shared-name"]
    assert sorted(a.sweep_reports()) == ["sw-0"]
    assert b.sweep_reports() == {}
    with pytest.raises(ServerError):
        b.report_of("sw-0")


def test_daemon_duplicate_job_rejected_remotely(daemon):
    spec = tiny_spec()
    client = ServiceClient(daemon.url, tenant="team-a")
    client.register_spec("dup", spec)
    with pytest.raises(ServerError, match="already registered"):
        client.register_spec("dup", spec)


def test_daemon_idempotent_replay(daemon):
    spec = tiny_spec()
    client = ServiceClient(daemon.url, tenant="team-a")
    params = {"job_id": "once", "spec": spec.to_dict()}
    first = client.call("register_spec", params, request_id="req-1")
    # Same id: replayed from the cache, NOT re-executed (a re-execution
    # would trip the duplicate-job rejection).
    second = client.call("register_spec", params, request_id="req-1")
    assert first == second
    with pytest.raises(ServerError):  # fresh id really re-executes
        client.call("register_spec", params, request_id="req-2")
    # Replay caches are per-tenant: another tenant's same id executes.
    other = ServiceClient(daemon.url, tenant="team-b")
    other.call("register_spec", params, request_id="req-1")


def test_daemon_rejects_unknown_method_and_bad_params(daemon):
    client = ServiceClient(daemon.url)
    with pytest.raises(ServiceError, match="unknown method"):
        client.call("frobnicate")
    with pytest.raises(ConfigurationError, match="missing required param"):
        client.call("report_of", {})
    with pytest.raises(ConfigurationError, match="tenant"):
        ServiceClient(daemon.url, tenant="bad::tenant").ping()


def test_daemon_quota_rejection_surfaces_as_429():
    with PlanningDaemon(planner=Planner(), port=0, quota_rate=0.001,
                        quota_burst=1.0) as daemon:
        client = ServiceClient(daemon.url, tenant="greedy")
        client.plan(tiny_spec())
        with pytest.raises(QuotaExceeded) as err:
            client.plan(tiny_spec())
        assert err.value.retry_after_s > 0.0
        # Cheap queries bypass admission: still served while over quota.
        assert client.ping()["ok"]
        text = client.metrics_text()
        assert 'repro_service_rejections_total{reason="quota"} 1' in text


def test_daemon_backpressure_surfaces_as_overload():
    with PlanningDaemon(planner=Planner(), port=0, max_inflight=1) as daemon:
        release = threading.Event()
        entered = threading.Event()
        original = daemon._materialize

        def slow_materialize(spec):
            entered.set()
            release.wait(10.0)
            return original(spec)

        daemon._materialize = slow_materialize
        errors = []

        def occupy():
            try:
                ServiceClient(daemon.url, tenant="a").plan(tiny_spec())
            except ReproError as exc:
                errors.append(exc)

        holder = threading.Thread(target=occupy)
        holder.start()
        assert entered.wait(10.0)
        with pytest.raises(ServiceOverloaded):
            ServiceClient(daemon.url, tenant="b").plan(
                tiny_spec(model="bert-large"))
        release.set()
        holder.join(30.0)
        assert not errors


def test_daemon_metrics_and_health_endpoints(daemon):
    client = ServiceClient(daemon.url, tenant="team-a")
    client.plan(tiny_spec())
    text = client.metrics_text()
    assert 'repro_service_requests_total{method="plan"} 1' in text
    assert 'repro_service_coalesce_total{outcome="leader"} 1' in text
    assert "repro_service_request_latency_seconds_bucket" in text
    assert 'repro_planner_work_total{stage="profile"} 1' in text
    assert client.health()["ok"] is True
    stats = client.stats()
    assert stats["planner"]["profile"] == 1
    assert stats["coalesce"]["leaders"] == 1


# ------------------------------------------- the headline concurrent scenario
def test_concurrent_multi_tenant_sweeps_coalesce_and_match():
    """N tenants, K requests, U unique specs: U expensive runs, and
    every response is bit-identical to in-process planning."""
    specs = [tiny_spec(), tiny_spec(model="bert-large")]
    clients, unique = 8, len(specs)
    planner = Planner()
    with PlanningDaemon(planner=planner, port=0,
                        max_inflight=clients) as daemon:
        barrier = threading.Barrier(clients)
        results = [None] * clients
        errors = []

        def worker(i):
            client = ServiceClient(daemon.url, tenant=f"tenant-{i % 3}")
            barrier.wait()
            try:
                results[i] = client.plan(specs[i % unique])
            except Exception as exc:
                errors.append(f"{i}: {type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)
        assert not errors
        flights = dict(daemon._flight.stats)
        warm = daemon.metrics.counter_value(
            "repro_service_coalesce_total", {"outcome": "warm"})
        work = dict(planner.stats)

    assert work["profile"] == unique
    assert work["frontier"] == unique
    assert flights["leaders"] == unique
    # Requests overlapping the leader ride its flight; any arriving
    # after it lands are warm hits -- either way, no extra work.
    assert flights["followers"] + warm == clients - unique

    reference = Planner()
    for i, report in enumerate(results):
        assert report is not None
        assert reports_equal(report, reference.plan(specs[i % unique]))


def test_concurrent_submit_sweep_across_tenants_bit_identical():
    spec_sets = [[tiny_spec()], [tiny_spec(strategy="max-freq")]]
    planner = Planner()
    with PlanningDaemon(planner=planner, port=0) as daemon:
        barrier = threading.Barrier(len(spec_sets))
        out = [None] * len(spec_sets)

        def worker(i):
            client = ServiceClient(daemon.url, tenant=f"t{i}")
            barrier.wait()
            out[i] = client.submit_sweep(spec_sets[i], prefix="sw")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(spec_sets))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)
        work = dict(planner.stats)

    # Both tenants' sweeps share one stack: one profile, one frontier.
    assert work["profile"] == 1
    reference = Planner()
    for i, rows in enumerate(out):
        assert rows is not None and sorted(rows) == ["sw-0"]
        assert reports_equal(rows["sw-0"], reference.plan(spec_sets[i][0]))
