"""Edge cases and error paths across modules."""

import pytest

import repro
from repro.core.frontier import Frontier
from repro.exceptions import (
    ClientError,
    ConfigurationError,
    GraphError,
    InfeasibleFlowError,
    OptimizationError,
    ProfilingError,
    ReproError,
)
from repro.gpu.frequency import FrequencyTable
from repro.gpu.specs import GPUSpec


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, ProfilingError, GraphError,
                    OptimizationError, ClientError):
            assert issubclass(exc, ReproError)

    def test_infeasible_flow_is_graph_error(self):
        assert issubclass(InfeasibleFlowError, GraphError)
        assert InfeasibleFlowError("x").violating_set is None


class TestGPUSpecValidation:
    def _spec(self, **overrides):
        base = dict(
            name="test",
            freq=FrequencyTable.from_range(210, 1410, 15),
            tdp_w=300.0, idle_w=60.0, blocking_w=90.0,
            active_floor_w=150.0, peak_tflops=100.0,
            mem_bandwidth_gbps=1000.0,
        )
        base.update(overrides)
        return GPUSpec(**base)

    def test_valid_spec(self):
        assert self._spec().max_freq == 1410

    def test_tdp_below_idle(self):
        with pytest.raises(ConfigurationError):
            self._spec(tdp_w=50.0)

    def test_blocking_out_of_band(self):
        with pytest.raises(ConfigurationError):
            self._spec(blocking_w=10.0)

    def test_floor_above_tdp(self):
        with pytest.raises(ConfigurationError):
            self._spec(active_floor_w=400.0)

    def test_power_must_outfall_performance(self):
        with pytest.raises(ConfigurationError):
            self._spec(power_exponent=0.3, perf_exponent=0.4)

    def test_perf_exponent_band(self):
        with pytest.raises(ConfigurationError):
            self._spec(perf_exponent=1.5)


class TestFrontierEdges:
    def test_empty_frontier_rejected(self):
        with pytest.raises(OptimizationError):
            Frontier(points=[], tau=0.001)

    def test_as_series_shape(self, small_optimizer):
        series = small_optimizer.frontier.as_series()
        assert len(series) == len(small_optimizer.frontier.points)
        times = [t for t, _ in series]
        assert times == sorted(times)

    def test_single_point_frontier_lookup(self, small_optimizer):
        point = small_optimizer.frontier.points[0]
        single = Frontier(points=[point], tau=0.001)
        assert single.t_min == single.t_star
        assert single.schedule_for(None) is point
        assert single.schedule_for(1e9) is point


class TestWorkloadFlags:
    def test_full_fidelity_env(self, monkeypatch):
        from repro.experiments.workloads import (
            effective_microbatches,
            full_fidelity,
            get_workload,
        )

        wl = get_workload("gpt3-1.3b@a100-pp4")
        monkeypatch.delenv("REPRO_FULL_FIDELITY", raising=False)
        assert not full_fidelity()
        assert effective_microbatches(wl, None) == 12
        monkeypatch.setenv("REPRO_FULL_FIDELITY", "1")
        assert full_fidelity()
        assert effective_microbatches(wl, None) == wl.num_microbatches


class TestPublicSurface:
    def test_version_and_all(self):
        assert repro.__version__ == "1.4.0"
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_plan_result_frontier_is_cached(self):
        plan = repro.plan_pipeline(
            "bert-large", num_stages=2, num_microbatches=2, freq_stride=24
        )
        assert plan.frontier is plan.frontier

    def test_engine_profile_feeds_serialization(self):
        """Profiles produced by the in-vivo runtime serialize cleanly."""
        import json

        from repro.core.serialization import profile_from_dict, profile_to_dict
        from repro.gpu.specs import A100_PCIE
        from repro.models.registry import build_model
        from repro.partition.algorithms import partition_model
        from repro.runtime.engine import TrainingEngine

        model = build_model("bert-large", 4)
        part = partition_model(model, 2, A100_PCIE)
        engine = TrainingEngine(model, part, A100_PCIE, num_microbatches=2,
                                freq_stride=24, iterations_per_freq=1)
        while not engine.profiling_done():
            engine.run_iteration()
        profile = engine.collect_profile()
        restored = profile_from_dict(
            json.loads(json.dumps(profile_to_dict(profile)))
        )
        assert set(restored.ops) == set(profile.ops)
