"""The ``exactness="fast"`` kernel vs the exact crawl and the oracle.

Fast mode trades bit-identity for speed (warm-started min-cuts,
series-parallel contraction, incremental event passes) under an
explicit contract: every fast frontier point costs at most
``1 + FAST_TOLERANCE`` times the exact point at the same deadline, and
never dips below the enumeration oracle's provable floor.  These tests
pin that contract over ~200 seeded random small pipelines, pin
``exactness="exact"`` to the ``REPRO_SLOW_PATH=1`` oracle bit-for-bit,
and cover the fast kernel's building blocks (incremental forward pass,
SP contraction, warm-cut cache) plus the cache-key plumbing that keeps
fast and exact artifacts from ever aliasing.
"""

from __future__ import annotations

import random
import re
from array import array

import pytest

from repro.api import Planner, PlanSpec
from repro.baselines.oracle import OracleBound, optimality_gap, oracle_bound
from repro.core.costmodel import build_cost_models
from repro.core.frontier import characterize_frontier
from repro.core.nextschedule import FAST_TOLERANCE, compiled_kernel
from repro.core.store import PlanStore
from repro.exceptions import ConfigurationError, OptimizationError
from repro.gpu.specs import A100_PCIE
from repro.graph.edgecentric import to_edge_centric
from repro.graph.lowerbounds import (
    BoundedEdge,
    contract_series_parallel,
    max_flow_with_lower_bounds,
)
from repro.graph.maxflow import WarmCutCache
from repro.models.registry import build_model
from repro.partition.algorithms import partition_model
from repro.pipeline.dag import build_pipeline_dag
from repro.pipeline.schedules import schedule_1f1b
from repro.profiler.online import profile_pipeline
from repro.service import stack_flight_key

NOISE = 0.05
STEP_TARGET = 24


def _noisy_profile(stages, seed):
    model = build_model("gpt3-xl", 4)
    partition = partition_model(model, stages, A100_PCIE)
    return profile_pipeline(model, partition, A100_PCIE, freq_stride=16,
                            noise=NOISE, seed=seed)


def _auto_tau(dag, profile):
    """Span-proportional tau giving ~STEP_TARGET crawl steps."""
    models = build_cost_models(profile)
    slowest = {n: models[dag.nodes[n].op_key].t_max for n in dag.nodes}
    fastest = {n: models[dag.nodes[n].op_key].t_min for n in dag.nodes}
    span = dag.iteration_time(slowest) - dag.iteration_time(fastest)
    return max(span, 1e-6) / STEP_TARGET


def _within_tolerance(fast_frontier, exact_frontier):
    """Worst per-point relative excess of fast over exact-at-same-time."""
    worst = 0.0
    for point in fast_frontier.points:
        ref = exact_frontier.schedule_for(point.iteration_time)
        excess = (point.effective_energy - ref.effective_energy) / max(
            abs(ref.effective_energy), 1e-9
        )
        worst = max(worst, excess)
    return worst


class TestFastTolerance:
    """~200 seeded random pipelines: fast within tolerance of exact."""

    @pytest.mark.parametrize("stages", [2, 3])
    def test_fast_within_tolerance_of_exact(self, stages):
        # 25 noisy profiles x 4 microbatch counts x 2 stage depths
        # = 200 (exact, fast) crawl pairs across the suite.
        dags = {
            mb: build_pipeline_dag(schedule_1f1b(stages, mb))
            for mb in (1, 2, 3, 4)
        }
        checked = 0
        for seed in range(25):
            profile = _noisy_profile(stages, seed)
            for mb, dag in dags.items():
                tau = _auto_tau(dag, profile)
                exact = characterize_frontier(dag, profile, tau=tau)
                fast = characterize_frontier(dag, profile, tau=tau,
                                             exactness="fast")
                worst = _within_tolerance(fast, exact)
                assert worst <= FAST_TOLERANCE, (
                    f"stages={stages} mb={mb} seed={seed}: fast exceeds "
                    f"exact by {worst:.4f} (> {FAST_TOLERANCE})"
                )
                # Both crawls share their endpoints by construction.
                assert fast.t_min == pytest.approx(exact.t_min)
                assert fast.t_star == pytest.approx(exact.t_star)
                checked += 1
        assert checked == 100

    def test_fast_never_below_oracle_floor(self):
        dag = build_pipeline_dag(schedule_1f1b(2, 1))
        for seed in range(10):
            profile = _noisy_profile(2, seed)
            tau = _auto_tau(dag, profile)
            bound = oracle_bound(dag, profile, grid_points=7)
            for exactness in ("exact", "fast"):
                frontier = characterize_frontier(dag, profile, tau=tau,
                                                 exactness=exactness)
                for point in frontier.points:
                    floor = bound.lower_bound(point.iteration_time)
                    assert point.effective_energy >= floor - 1e-9, (
                        f"seed={seed} {exactness}: point at "
                        f"{point.iteration_time:.4f}s below oracle floor"
                    )

    def test_exact_mode_stays_bit_identical_to_slow_path(self, monkeypatch):
        profile = _noisy_profile(2, 7)
        dag = build_pipeline_dag(schedule_1f1b(2, 3))
        tau = _auto_tau(dag, profile)
        exact = characterize_frontier(dag, profile, tau=tau,
                                      exactness="exact")
        monkeypatch.setenv("REPRO_SLOW_PATH", "1")
        oracle = characterize_frontier(dag, profile, tau=tau)
        key = lambda f: [
            (p.iteration_time, p.effective_energy, p.compute_energy,
             p.durations, p.frequencies)
            for p in f.points
        ]
        assert key(exact) == key(oracle)
        assert exact.stats["timings"]["kernel"] == "flat"
        assert oracle.stats["timings"]["kernel"] == "dict"

    def test_slow_path_overrides_fast_request(self, monkeypatch):
        profile = _noisy_profile(2, 1)
        dag = build_pipeline_dag(schedule_1f1b(2, 2))
        monkeypatch.setenv("REPRO_SLOW_PATH", "1")
        frontier = characterize_frontier(dag, profile, tau=0.01,
                                         exactness="fast")
        assert frontier.stats["timings"]["kernel"] == "dict"

    def test_invalid_exactness_rejected(self):
        profile = _noisy_profile(2, 0)
        dag = build_pipeline_dag(schedule_1f1b(2, 1))
        with pytest.raises(OptimizationError):
            characterize_frontier(dag, profile, tau=0.01,
                                  exactness="approximate")


class TestFastTimings:
    def test_fast_stats_record_kernel_counters(self):
        profile = _noisy_profile(2, 3)
        dag = build_pipeline_dag(schedule_1f1b(2, 4))
        frontier = characterize_frontier(dag, profile,
                                         tau=_auto_tau(dag, profile),
                                         exactness="fast")
        timings = frontier.stats["timings"]
        assert frontier.stats["exactness"] == "fast"
        assert timings["kernel"] == "fast"
        for counter in ("warm_hits", "warm_misses", "contractions",
                        "incremental_passes", "full_passes",
                        "nodes_recomputed", "nodes_total"):
            assert counter in timings
        assert 0.0 < timings["contraction_ratio"] <= 1.0
        assert timings["nodes_total"] >= timings["nodes_recomputed"] > 0

    def test_exact_stats_carry_no_fast_counters(self):
        profile = _noisy_profile(2, 3)
        dag = build_pipeline_dag(schedule_1f1b(2, 4))
        frontier = characterize_frontier(dag, profile,
                                         tau=_auto_tau(dag, profile))
        assert frontier.stats["exactness"] == "exact"
        assert "warm_hits" not in frontier.stats["timings"]


class TestOracleBound:
    def test_ladder_mode_is_exact_discrete_floor(self):
        profile = _noisy_profile(2, 5)
        dag = build_pipeline_dag(schedule_1f1b(2, 1))
        bound = oracle_bound(dag, profile, mode="ladder")
        assert bound.slack == 0.0
        assert bound.mode == "ladder"
        frontier = characterize_frontier(dag, profile,
                                         tau=_auto_tau(dag, profile))
        # The continuous crawl matches or beats the discrete optimum;
        # the clamped gap summary is therefore ~0 at every point.
        assert optimality_gap(frontier, bound) <= 0.02

    def test_grid_refines_with_resolution(self):
        profile = _noisy_profile(2, 5)
        dag = build_pipeline_dag(schedule_1f1b(2, 1))
        coarse = oracle_bound(dag, profile, grid_points=3)
        fine = oracle_bound(dag, profile, grid_points=9)
        assert fine.slack < coarse.slack
        assert isinstance(coarse, OracleBound)

    def test_infeasible_deadline_returns_inf(self):
        profile = _noisy_profile(2, 5)
        dag = build_pipeline_dag(schedule_1f1b(2, 1))
        bound = oracle_bound(dag, profile, grid_points=3)
        assert bound.lower_bound(bound.t_min * 0.5) == float("inf")
        assert bound.lower_bound() == bound.energies[0] - bound.slack

    def test_assignment_cap_enforced(self):
        profile = _noisy_profile(2, 0)
        dag = build_pipeline_dag(schedule_1f1b(2, 4))
        with pytest.raises(ConfigurationError):
            oracle_bound(dag, profile, grid_points=9, max_assignments=100)

    def test_bad_mode_and_grid_rejected(self):
        profile = _noisy_profile(2, 0)
        dag = build_pipeline_dag(schedule_1f1b(2, 1))
        with pytest.raises(ConfigurationError):
            oracle_bound(dag, profile, mode="exhaustive")
        with pytest.raises(ConfigurationError):
            oracle_bound(dag, profile, grid_points=1)


class TestIncrementalForwardPass:
    def test_bit_identical_to_full_pass(self):
        profile = _noisy_profile(2, 2)
        dag = build_pipeline_dag(schedule_1f1b(2, 4))
        models = build_cost_models(profile)
        node_cost = {n: models[dag.nodes[n].op_key] for n in dag.nodes}
        kern = compiled_kernel(to_edge_centric(dag), node_cost)
        rng = random.Random(42)
        base = kern.durations_array(
            {n: cm.t_max for n, cm in node_cost.items()}
        )
        earliest, _ = kern.forward_pass(base)
        for _ in range(50):
            new = array("d", base)
            changed = rng.sample(range(kern.num_comps),
                                 rng.randint(1, 3))
            for comp in changed:
                cm = node_cost[comp]
                if cm.fixed:
                    continue
                new[comp] = cm.t_min + rng.random() * (cm.t_max - cm.t_min)
            from_pos = kern.min_affected_pos(changed)
            inc_ear, inc_make, _ = kern.forward_pass_incremental(
                new, earliest, from_pos
            )
            full_ear, full_make = kern.forward_pass(new)
            assert inc_ear == full_ear  # bitwise, not approx
            assert inc_make == full_make
            base, earliest = new, inc_ear

    def test_from_pos_zero_falls_back_to_full(self):
        profile = _noisy_profile(2, 2)
        dag = build_pipeline_dag(schedule_1f1b(2, 2))
        models = build_cost_models(profile)
        node_cost = {n: models[dag.nodes[n].op_key] for n in dag.nodes}
        kern = compiled_kernel(to_edge_centric(dag), node_cost)
        dur = kern.durations_array(
            {n: cm.t_min for n, cm in node_cost.items()}
        )
        ear, make, recomputed = kern.forward_pass_incremental(dur, [], 0)
        full_ear, full_make = kern.forward_pass(dur)
        assert (ear, make) == (full_ear, full_make)
        assert recomputed == kern.num_nodes


def _random_bounded_instance(rng):
    n = rng.randint(3, 10)
    edges = []
    for _ in range(rng.randint(2, 18)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        ub = rng.uniform(0.5, 20.0)
        lb = rng.uniform(0.0, ub) if rng.random() < 0.4 else 0.0
        edges.append(BoundedEdge(u, v, lb, ub))
    return n, edges


class TestSeriesParallelContraction:
    def test_contraction_preserves_solution_exactly(self):
        rng = random.Random(2024)
        contracted_count = 0
        for _ in range(150):
            n, edges = _random_bounded_instance(rng)
            if not edges:
                continue
            s, t = 0, n - 1
            con = contract_series_parallel(
                n, [e.u for e in edges], [e.v for e in edges],
                [e.lb for e in edges], [e.ub for e in edges], s, t,
            )
            try:
                full = max_flow_with_lower_bounds(n, edges, s, t)
                full_err = None
            except Exception as exc:
                full, full_err = None, exc
            if con is None:
                continue
            contracted_count += 1
            small_edges = [
                BoundedEdge(con.edge_u[k], con.edge_v[k],
                            con.lower[k], con.upper[k])
                for k in range(len(con.edge_u))
            ]
            try:
                small = max_flow_with_lower_bounds(
                    con.num_nodes, small_edges, con.s, con.t
                )
                small_err = None
            except Exception as exc:
                small, small_err = None, exc
            if full_err is not None:
                assert small_err is not None
                continue
            assert small_err is None
            assert small.max_flow == pytest.approx(full.max_flow)
            # The expanded source side must be a genuine minimum cut:
            # same cut value as the uncontracted min cut.
            mask = [False] * n
            for node in small.source_side:
                mask[node] = True
            expanded = con.expand_mask(mask)
            value = 0.0
            for e in edges:
                if expanded[e.u] and not expanded[e.v]:
                    value += e.ub
                elif expanded[e.v] and not expanded[e.u]:
                    value -= e.lb
            cut_value = 0.0
            for e in edges:
                if e.u in full.source_side and e.v not in full.source_side:
                    cut_value += e.ub
                elif (e.v in full.source_side
                      and e.u not in full.source_side):
                    cut_value -= e.lb
            assert expanded[s] and not expanded[t]
            assert value == pytest.approx(cut_value)
        assert contracted_count > 30

    def test_zero_lower_variant_shares_structure(self):
        edges = [BoundedEdge(0, 1, 1.0, 5.0), BoundedEdge(1, 2, 0.5, 4.0),
                 BoundedEdge(0, 2, 0.0, 2.0)]
        con = contract_series_parallel(
            3, [e.u for e in edges], [e.v for e in edges],
            [e.lb for e in edges], [e.ub for e in edges], 0, 2,
        )
        assert con is not None
        relaxed = con.with_zero_lower()
        assert relaxed.upper == con.upper
        assert all(lb == 0.0 for lb in relaxed.lower)
        assert relaxed.num_nodes == con.num_nodes


class TestWarmCutCache:
    EDGE_U = [0, 1, 0]
    EDGE_V = [1, 2, 2]

    def test_reuse_on_identical_capacities(self):
        cache = WarmCutCache()
        lower, upper = [0.0, 0.0, 0.0], [2.0, 3.0, 4.0]
        mask = [True, False, False]
        cache.record(3, self.EDGE_U, self.EDGE_V, lower, upper, mask)
        reused = cache.try_reuse(3, self.EDGE_U, self.EDGE_V,
                                 lower, upper, 0.01)
        assert reused == mask
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_when_cheaper_cut_possible(self):
        cache = WarmCutCache()
        lower, upper = [0.0, 0.0, 0.0], [2.0, 3.0, 4.0]
        cache.record(3, self.EDGE_U, self.EDGE_V, lower, upper,
                     [True, False, False])
        # A non-crossing edge gets much cheaper: the recorded cut (cost
        # unchanged) may no longer be minimal -> must re-solve.
        cheaper = [2.0, 0.1, 4.0]
        assert cache.try_reuse(3, self.EDGE_U, self.EDGE_V,
                               lower, cheaper, 0.01) is None
        assert cache.misses == 1

    def test_structural_change_invalidates(self):
        cache = WarmCutCache()
        cache.record(3, self.EDGE_U, self.EDGE_V,
                     [0.0, 0.0, 0.0], [2.0, 3.0, 4.0],
                     [True, False, False])
        assert cache.try_reuse(4, self.EDGE_U + [2], self.EDGE_V + [3],
                               [0.0] * 4, [2.0, 3.0, 4.0, 1.0],
                               0.01) is None

    def test_infinite_cut_value_never_recorded(self):
        cache = WarmCutCache()
        inf = float("inf")
        cache.record(3, self.EDGE_U, self.EDGE_V,
                     [0.0, 0.0, 0.0], [inf, 3.0, 4.0],
                     [True, False, False])  # crossing edge is infinite
        assert cache.try_reuse(3, self.EDGE_U, self.EDGE_V,
                               [0.0, 0.0, 0.0], [inf, 3.0, 4.0],
                               0.01) is None


class TestExactnessPlumbing:
    """Spec round-trip, cache keys and flight keys never alias modes."""

    SPEC = dict(model="gpt3-xl", gpu="a100", stages=2, microbatches=2,
                freq_stride=24)

    def test_spec_roundtrip_and_version_gate(self):
        fast = PlanSpec(exactness="fast", **self.SPEC)
        assert PlanSpec.from_dict(fast.to_dict()) == fast
        payload = fast.to_dict()
        assert payload["version"] == 3
        payload["version"] = 2
        with pytest.raises(ConfigurationError):
            PlanSpec.from_dict(payload)
        legacy = PlanSpec(**self.SPEC).to_dict()
        legacy["version"] = 2
        del legacy["exactness"]
        assert PlanSpec.from_dict(legacy).exactness == "exact"

    def test_invalid_exactness_rejected_at_spec(self):
        with pytest.raises(ConfigurationError):
            PlanSpec(exactness="quick", **self.SPEC)

    def test_cache_and_flight_keys_distinguish_modes(self):
        exact = PlanSpec(**self.SPEC)
        fast = exact.replace(exactness="fast")
        planner = Planner()
        exact_keys = planner.cache_keys(exact)
        fast_keys = planner.cache_keys(fast)
        assert exact_keys["frontier"] != fast_keys["frontier"]
        assert exact_keys["profile"] == fast_keys["profile"]
        assert exact_keys["partition"] == fast_keys["partition"]
        assert stack_flight_key(exact) != stack_flight_key(fast)

    def test_store_roundtrip_never_aliases_modes(self, tmp_path):
        exact = PlanSpec(**self.SPEC)
        fast = exact.replace(exactness="fast")
        store = PlanStore(tmp_path / "plans")
        planner = Planner(cache=store)
        first_exact = planner.frontier_for(exact)
        first_fast = planner.frontier_for(fast)
        assert first_exact.stats["exactness"] == "exact"
        assert first_fast.stats["exactness"] == "fast"
        # A cold planner over the same store must load each mode's own
        # artifact, bit-for-bit, never the other mode's.
        cold = Planner(cache=PlanStore(tmp_path / "plans"))
        for spec, original in ((exact, first_exact), (fast, first_fast)):
            loaded = cold.frontier_for(spec)
            assert loaded.stats["exactness"] == spec.exactness
            assert [p.effective_energy for p in loaded.points] == \
                [p.effective_energy for p in original.points]
            assert [p.iteration_time for p in loaded.points] == \
                [p.iteration_time for p in original.points]

    def test_optimizer_exactness_flows_from_spec(self):
        planner = Planner()
        fast = PlanSpec(exactness="fast", **self.SPEC)
        stack = planner.result(fast)
        assert stack.optimizer.exactness == "fast"
        assert stack.keys["optimizer"][-1] == "fast"
        assert stack.optimizer.frontier.stats["exactness"] == "fast"


class TestServiceMetrics:
    """A serving daemon exports the crawl's stage timings per mode."""

    def test_stage_timings_exported_per_exactness(self):
        import json
        from http.client import HTTPConnection

        from repro.service.daemon import PlanningDaemon

        with PlanningDaemon(planner=Planner(), port=0) as daemon:
            host, port = daemon.address
            conn = HTTPConnection(host, port, timeout=60)
            for exactness in ("exact", "fast"):
                body = json.dumps({
                    "method": "plan", "id": f"fm-{exactness}", "params": {
                        "spec": {"model": "gpt3-xl", "stages": 2,
                                 "microbatches": 2, "freq_stride": 24,
                                 "exactness": exactness}}})
                conn.request("POST", "/rpc", body,
                             {"Content-Type": "application/json"})
                reply = conn.getresponse().read()
                assert b'"error"' not in reply[:200], reply[:400]
            conn.request("GET", "/metrics")
            text = conn.getresponse().read().decode()
            conn.close()
        for exactness in ("exact", "fast"):
            for stage in ("event_times", "instance_build", "maxflow",
                          "schedule"):
                needle = ('repro_optimizer_stage_seconds_count'
                          f'{{exactness="{exactness}",stage="{stage}"}} 1')
                assert needle in text
        assert re.search(
            r'repro_optimizer_fast_events_total\{event="contractions"\} '
            r'[1-9]', text)
        assert re.search(
            r'repro_optimizer_fast_events_total\{event="warm_hits"\} '
            r'[1-9]', text)
        assert 'repro_optimizer_contraction_ratio{exactness="fast"}' in text
