"""Shared fixtures: a small, fast experiment stack reused across tests."""

from __future__ import annotations

import pytest

from repro.core.costmodel import build_cost_models
from repro.core.optimizer import PerseusOptimizer
from repro.gpu.specs import A40, A100_PCIE
from repro.models.registry import build_model
from repro.partition.algorithms import partition_model
from repro.pipeline.dag import build_pipeline_dag
from repro.pipeline.schedules import schedule_1f1b
from repro.profiler.online import profile_pipeline


@pytest.fixture(scope="session")
def a100():
    return A100_PCIE


@pytest.fixture(scope="session")
def a40():
    return A40


@pytest.fixture(scope="session")
def small_model():
    """GPT-3 1.3B at microbatch 4 -- the paper's A100 headline workload."""
    return build_model("gpt3-xl", 4)


@pytest.fixture(scope="session")
def small_partition(small_model, a100):
    return partition_model(small_model, 4, a100)


@pytest.fixture(scope="session")
def small_profile(small_model, small_partition, a100):
    """Coarse (every 8th clock) but complete pipeline profile."""
    return profile_pipeline(small_model, small_partition, a100, freq_stride=8)


@pytest.fixture(scope="session")
def small_dag():
    """1F1B, 4 stages, 6 microbatches -- Figure 1's configuration."""
    return build_pipeline_dag(schedule_1f1b(4, 6))


@pytest.fixture(scope="session")
def small_cost_models(small_profile):
    return build_cost_models(small_profile)


@pytest.fixture(scope="session")
def small_optimizer(small_dag, small_profile):
    opt = PerseusOptimizer(dag=small_dag, profile=small_profile, tau=0.01)
    opt.frontier  # materialize once for the whole session
    return opt
