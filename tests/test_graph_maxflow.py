"""Max-flow solvers: cross-checked against networkx and each other."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph.maxflow import Dinic, FlowNetwork, edmonds_karp


def build(num_nodes, edges):
    net = FlowNetwork(num_nodes)
    arcs = [net.add_edge(u, v, c) for u, v, c in edges]
    return net, arcs


class TestBasics:
    def test_single_edge(self):
        net, _ = build(2, [(0, 1, 5.0)])
        assert Dinic(net).max_flow(0, 1) == pytest.approx(5.0)

    def test_series_bottleneck(self):
        net, _ = build(3, [(0, 1, 5.0), (1, 2, 3.0)])
        assert Dinic(net).max_flow(0, 2) == pytest.approx(3.0)

    def test_parallel_paths(self):
        net, _ = build(4, [(0, 1, 2.0), (0, 2, 3.0), (1, 3, 2.0), (2, 3, 3.0)])
        assert Dinic(net).max_flow(0, 3) == pytest.approx(5.0)

    def test_disconnected(self):
        net, _ = build(3, [(0, 1, 5.0)])
        assert Dinic(net).max_flow(0, 2) == pytest.approx(0.0)

    def test_classic_crossover(self):
        edges = [
            (0, 1, 10.0), (0, 2, 10.0), (1, 2, 2.0),
            (1, 3, 4.0), (2, 4, 9.0), (3, 5, 10.0),
            (4, 3, 6.0), (4, 5, 10.0),
        ]
        net, _ = build(6, edges)
        # 0->1->3->5 carries 4 (cap of 1->3); 0->2->4->5 carries 9 (cap of
        # 2->4); the 1->2 shortcut is throttled by the saturated 2->4.
        assert Dinic(net).max_flow(0, 5) == pytest.approx(13.0)

    def test_source_equals_sink_rejected(self):
        net, _ = build(2, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            Dinic(net).max_flow(0, 0)

    def test_negative_capacity_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(GraphError):
            net.add_edge(0, 1, -1.0)


class TestMinCut:
    def test_reachable_set_defines_min_cut(self):
        edges = [(0, 1, 1.0), (0, 2, 10.0), (1, 3, 10.0), (2, 3, 1.0)]
        net, arcs = build(4, edges)
        value = Dinic(net).max_flow(0, 3)
        assert value == pytest.approx(2.0)
        side = net.reachable_from(0)
        cut = sum(
            c for (u, v, c), _ in zip(edges, arcs) if u in side and v not in side
        )
        assert cut == pytest.approx(value)

    def test_arc_flow_conservation(self):
        edges = [(0, 1, 4.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 3.0), (1, 2, 2.0)]
        net, arcs = build(4, edges)
        Dinic(net).max_flow(0, 3)
        flows = {e: net.arc_flow(a) for e, a in zip(edges, arcs)}
        for node in (1, 2):
            inflow = sum(f for (u, v, _), f in flows.items() if v == node)
            outflow = sum(f for (u, v, _), f in flows.items() if u == node)
            assert inflow == pytest.approx(outflow)


@st.composite
def random_flow_instance(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    num_edges = draw(st.integers(min_value=1, max_value=22))
    edges = []
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        c = draw(st.floats(min_value=0.1, max_value=50.0))
        edges.append((u, v, c))
    return n, edges


class TestAgainstReferences:
    @settings(max_examples=60, deadline=None)
    @given(random_flow_instance())
    def test_matches_networkx(self, instance):
        n, edges = instance
        if not edges:
            return
        net, _ = build(n, edges)
        ours = Dinic(net).max_flow(0, n - 1)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for u, v, c in edges:
            if g.has_edge(u, v):
                g[u][v]["capacity"] += c
            else:
                g.add_edge(u, v, capacity=c)
        theirs = nx.maximum_flow_value(g, 0, n - 1)
        assert ours == pytest.approx(theirs, rel=1e-6, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(random_flow_instance())
    def test_dinic_matches_edmonds_karp(self, instance):
        n, edges = instance
        if not edges:
            return
        net1, _ = build(n, edges)
        net2, _ = build(n, edges)
        assert Dinic(net1).max_flow(0, n - 1) == pytest.approx(
            edmonds_karp(net2, 0, n - 1), rel=1e-6, abs=1e-6
        )
