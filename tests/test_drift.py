"""Closed-loop drift: detector, controller contract, chaos, scenarios.

Four layers, mirroring the package:

* detector/controller units run with scripted ``replan`` callables and
  an injected clock, so every robustness clause -- hysteresis,
  patience, token bucket, guardrail, failure/timeout backoff, probing,
  restart re-adoption -- is exercised deterministically;
* the scenario library and analytic simulator (the benchmark's
  engine) are checked for shape and for the hold <= closed <= oracle
  energy ordering;
* the Perseus server's drift surface (``report_measurement``,
  ``enable_drift``, the energy re-profile path, announced-straggler
  handoff) runs against a real characterized frontier;
* the fleet simulator's online injection (``set_straggler`` into a
  *running* simulation via :class:`ScenarioDriver`) must be
  bit-identical to baking the same events into the trace.
"""

from __future__ import annotations

import threading

import pytest

from repro.drift import (
    DRIFTED,
    PROBING,
    TRACKING,
    DriftBand,
    DriftController,
    DriftDetector,
    DriftPolicy,
    ReplanProposal,
    get_scenario,
    planned_stage_times,
    simulate_scenario,
    stale_profile,
    thermal_ramp,
)
from repro.drift.detector import ENERGY_DRIFT, TIME_DRIFT
from repro.exceptions import (
    ConfigurationError,
    ServerError,
    SimulationError,
)
from repro.runtime.server import PerseusServer
from repro.stragglers import stepped_ramp

T0 = 1.0  # planned iteration time used by the unit layers


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_policy(**overrides) -> DriftPolicy:
    """A tight-but-standard policy for unit tests."""
    merged = dict(
        patience=3,
        window=8,
        replan_rate=1.0,      # a token per simulated second
        replan_burst=4,
        backoff_base_s=5.0,
        probe_after_steps=10,
    )
    merged.update(overrides)
    return DriftPolicy(**merged)


class ScriptedPlanner:
    """A ``replan`` callable that offers simple frontier-ish proposals.

    The "frontier" is a straight line: a floor of ``target`` plans a
    schedule at exactly ``target`` (baseline ``T0``), predicted energy
    ``100/t`` (slower = cheaper), so the guardrail naturally passes
    drift re-plans.  Tests override pieces per-case.
    """

    def __init__(self) -> None:
        self.calls = []
        self.applied = []
        self.fail_with = None
        self.decline = False
        self.sleep_s = 0.0
        self.energy_of = lambda t: 100.0 / t

    def __call__(self, target_s, reason, signal):
        self.calls.append((target_s, reason))
        if self.sleep_s:
            import time as _time

            _time.sleep(self.sleep_s)
        if self.fail_with is not None:
            raise self.fail_with
        if self.decline:
            return None
        planned = target_s if target_s is not None else T0
        held = self.applied[-1] if self.applied else T0

        def apply(planned=planned):
            self.applied.append(planned)

        return ReplanProposal(
            planned_time_s=planned,
            predicted_energy_j=self.energy_of(planned),
            held_predicted_energy_j=self.energy_of(held),
            apply=apply,
        )


def make_controller(planner=None, policy=None, clock=None,
                    **kwargs) -> tuple:
    planner = planner or ScriptedPlanner()
    clock = clock or FakeClock()
    controller = DriftController(
        planner,
        planned_time_s=T0,
        policy=policy or make_policy(),
        clock=clock,
        **kwargs,
    )
    return controller, planner, clock


def drive(controller, clock, time_s, steps):
    """Feed ``steps`` identical observations, advancing the clock."""
    action = None
    for _ in range(steps):
        clock.advance(time_s)
        action = controller.observe(time_s)
    return action


# ------------------------------------------------------------------ detector

class TestDetector:
    def test_patience_gates_the_flag(self):
        det = DriftDetector(T0, patience=3)
        assert det.observe(1.3) is None
        assert det.observe(1.3) is None
        signal = det.observe(1.3)
        assert signal is not None and signal.kind == TIME_DRIFT
        assert signal.time_factor == pytest.approx(1.3)

    def test_single_spike_never_flags(self):
        det = DriftDetector(T0, patience=3)
        for _ in range(10):
            assert det.observe(2.0) is None or pytest.fail("flagged")
            assert det.observe(1.0) is None

    def test_hysteresis_band_holds_between_exit_and_enter(self):
        band = DriftBand(enter=0.08, exit=0.03)
        det = DriftDetector(T0, band=band, patience=2)
        for _ in range(2):
            det.observe(1.2)
        assert det.flagged
        # 5% deviation: inside enter, outside exit -- stays flagged.
        for _ in range(5):
            assert det.observe(1.05) is not None
        # Below exit for `patience` samples: clears.
        det.observe(1.0)
        assert det.observe(1.0) is None
        assert not det.flagged

    def test_rebase_forgets_drift_state(self):
        det = DriftDetector(T0, patience=2)
        det.observe(1.3)
        det.observe(1.3)
        assert det.flagged
        det.rebase(1.3)
        assert not det.flagged
        assert det.observe(1.3) is None  # in-band on the new reference

    def test_self_baselining_energy_reference(self):
        det = DriftDetector(T0, planned_energy_j=None, patience=2)
        det.observe(1.0, 50.0)
        det.observe(1.0, 50.0)
        assert det.energy_reference_j == pytest.approx(50.0)
        det.observe(1.0, 70.0)
        signal = det.observe(1.0, 70.0)
        assert signal is not None and signal.kind == ENERGY_DRIFT
        assert signal.energy_factor == pytest.approx(1.4)

    def test_time_drifted_samples_do_not_poison_energy_baseline(self):
        det = DriftDetector(T0, planned_energy_j=None, patience=2)
        det.observe(1.5, 99.0)  # already drifted: excluded
        assert det.energy_reference_j is None
        det.observe(1.0, 50.0)
        det.observe(1.0, 50.0)
        assert det.energy_reference_j == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DriftBand(enter=0.03, exit=0.08)
        with pytest.raises(ConfigurationError):
            DriftDetector(T0, patience=0)
        with pytest.raises(ConfigurationError):
            DriftDetector(T0, patience=4, window=2)
        det = DriftDetector(T0)
        with pytest.raises(ConfigurationError):
            det.observe(-1.0)


# ---------------------------------------------------------------- controller

class TestControllerLoop:
    def test_detect_then_replan_then_drifted(self):
        controller, planner, clock = make_controller()
        action = drive(controller, clock, 1.3, 2)
        assert not action.detected
        action = drive(controller, clock, 1.3, 1)
        assert action.detected and action.replanned
        assert action.target_time_s == pytest.approx(1.3)
        assert controller.state == DRIFTED
        assert planner.applied == [pytest.approx(1.3)]
        assert controller.stats["detections"] == 1
        assert controller.stats["replans"] == 1

    def test_in_band_stays_tracking_and_never_calls_replan(self):
        controller, planner, clock = make_controller()
        action = drive(controller, clock, 1.01, 20)
        assert action.state == TRACKING and not action.replanned
        assert planner.calls == []

    def test_probe_and_recovery(self):
        policy = make_policy(probe_after_steps=5)
        controller, planner, clock = make_controller(policy=policy)
        drive(controller, clock, 1.3, 3)  # detect + replan to 1.3
        # Calm (in-band on the adopted plan) until the probe fires.
        action = drive(controller, clock, 1.3, 5)
        assert action.replanned and action.reason == "probe"
        assert controller.state == PROBING
        assert controller.stats["probes"] == 1
        # The fault is gone: the baseline probe realizes T0 in-band.
        drive(controller, clock, 1.0, 3)
        assert controller.state == TRACKING
        assert controller.stats["recoveries"] == 1

    def test_probe_finding_fault_backs_off_exponentially(self):
        policy = make_policy(probe_after_steps=4, probe_backoff_factor=2.0,
                             probe_backoff_cap=4)
        controller, planner, clock = make_controller(policy=policy)
        drive(controller, clock, 1.3, 3)
        probes_at = []
        step = 0
        for _ in range(60):
            step += 1
            clock.advance(1.3)
            # Still throttled: a probe's baseline plan realizes 1.3,
            # re-flagging within patience and re-flooring the job.
            action = controller.observe(1.3 if controller.state != PROBING
                                        else 1.3)
            if action.reason == "probe" and action.replanned:
                probes_at.append(step)
        gaps = [b - a for a, b in zip(probes_at, probes_at[1:])]
        assert gaps and all(b >= a for a, b in zip(gaps, gaps[1:]))
        assert gaps[-1] > gaps[0]  # the cadence really stretched

    def test_restart_readopts_held_plan_without_tokens(self):
        policy = make_policy(replan_rate=0.001, replan_burst=1)
        controller, planner, clock = make_controller(policy=policy)
        drive(controller, clock, 1.3, 3)  # spends the only token
        action = controller.notify_restart()
        assert action.replanned and action.reason == "readopt"
        assert action.target_time_s == pytest.approx(1.3)
        assert controller.stats["readoptions"] == 1
        assert planner.applied[-1] == pytest.approx(1.3)

    def test_external_replan_rebases_and_clears_state(self):
        controller, planner, clock = make_controller()
        drive(controller, clock, 1.3, 3)
        assert controller.state == DRIFTED
        controller.notify_external_replan(1.5)
        assert controller.state == TRACKING
        assert controller.held_target_s is None
        # In-band on the announced plan: no further signal.
        action = drive(controller, clock, 1.5, 5)
        assert not action.detected and planner.calls[-1][1] != "drift" \
            or len(planner.calls) == 1


class TestControllerChaos:
    def test_guardrail_rejects_costlier_replan(self):
        planner = ScriptedPlanner()
        planner.energy_of = lambda t: 100.0 * t  # slower = pricier
        controller, _, clock = make_controller(planner=planner)
        action = drive(controller, clock, 1.3, 3)
        assert action.detected and not action.replanned
        assert action.held == "guardrail"
        assert controller.stats["guardrail_rejections"] == 1
        assert planner.applied == []  # never deployed

    def test_token_bucket_bounds_replans_under_flapping(self):
        policy = make_policy(replan_rate=0.01, replan_burst=2,
                             probe_after_steps=None)
        controller, planner, clock = make_controller(policy=policy)
        flips = 0
        for cycle in range(20):
            drive(controller, clock, 1.4, 4)   # drifts up
            drive(controller, clock, 1.0, 4)   # snaps back
            flips += 2
        total_actions = (controller.stats["replans"]
                         + controller.stats["probes"])
        elapsed = clock.now
        assert total_actions <= policy.replan_burst \
            + policy.replan_rate * elapsed + 1
        assert controller.stats["bucket_denials"] > 0

    def test_replan_failure_backs_off_exponentially(self):
        planner = ScriptedPlanner()
        planner.fail_with = RuntimeError("planner down")
        policy = make_policy(backoff_base_s=10.0, backoff_factor=2.0,
                             backoff_cap_s=40.0)
        controller, _, clock = make_controller(planner=planner,
                                               policy=policy)
        action = drive(controller, clock, 1.3, 3)
        assert action.held == "error"
        assert controller.stats["failures"] == 1
        # Within the 10s backoff window: held without calling replan.
        calls = len(planner.calls)
        action = drive(controller, clock, 1.3, 2)  # 2 x 1.3s < 10s
        assert action.held == "backoff"
        assert len(planner.calls) == calls
        assert controller.stats["backoff_holds"] >= 1
        # Past the window the attempt retries (and fails again, doubling).
        clock.advance(10.0)
        action = controller.observe(1.3)
        assert action.held == "error"
        assert controller.stats["failures"] == 2

    def test_replan_timeout_holds_the_plan(self):
        planner = ScriptedPlanner()
        planner.sleep_s = 0.2
        policy = make_policy(replan_timeout_s=0.02)
        controller, _, clock = make_controller(planner=planner,
                                               policy=policy)
        action = drive(controller, clock, 1.3, 3)
        assert action.held == "timeout"
        assert controller.stats["timeouts"] == 1
        assert planner.applied == []

    def test_decline_is_graceful(self):
        planner = ScriptedPlanner()
        planner.decline = True
        controller, _, clock = make_controller(planner=planner)
        action = drive(controller, clock, 1.3, 3)
        assert action.held == "declined"
        assert controller.stats["declines"] == 1
        assert controller.state == TRACKING  # nothing changed

    def test_failed_readopt_leaves_default_plan(self):
        controller, planner, clock = make_controller()
        drive(controller, clock, 1.3, 3)
        planner.fail_with = RuntimeError("deploy path down")
        action = controller.notify_restart()
        assert not action.replanned and action.held == "error"
        assert controller.stats["readoptions"] == 0


# ----------------------------------------------------------------- scenarios

class TestScenarios:
    def test_stepped_ramp_shape(self):
        ramp = stepped_ramp(1.3, 3)
        assert [round(t.degree, 4) for t in ramp] == [1.1, 1.2, 1.3]
        with pytest.raises(SimulationError):
            stepped_ramp(0.9, 3)
        with pytest.raises(SimulationError):
            stepped_ramp(1.3, 0)

    def test_thermal_ramp_phases_ramp_hold_recover(self):
        sc = thermal_ramp(peak=1.3, start_s=100.0, ramp_steps=2,
                          step_s=50.0, hold_s=200.0)
        degrees = [p.degree for p in sc.phases]
        assert degrees[0] == 1.0 and max(degrees) == pytest.approx(1.3)
        assert degrees[-1] == 1.0  # recovered
        assert sc.degree_at(0.0) == 1.0
        assert sc.degree_at(160.0) == pytest.approx(1.3)

    def test_registry_and_unknown_name(self):
        assert get_scenario("stale-profile").name == "stale-profile"
        with pytest.raises(ConfigurationError, match="unknown drift"):
            get_scenario("quantum-foam")

    def test_to_events_skips_leading_baseline(self):
        sc = thermal_ramp(peak=1.2, start_s=10.0, ramp_steps=1,
                          step_s=5.0, hold_s=5.0)
        events = sc.to_events("job-0", start_s=100.0)
        assert all(e.time_s >= 110.0 for e in events)
        assert events[0].degree == pytest.approx(1.2)
        assert events[-1].degree == 1.0  # the recovery notification

    def test_phase_validation(self):
        from repro.drift import DriftPhase, DriftScenario

        with pytest.raises(ConfigurationError):
            DriftPhase(start_s=0.0, degree=0.5)
        with pytest.raises(ConfigurationError):
            DriftScenario(name="x", phases=())
        with pytest.raises(ConfigurationError):
            DriftScenario(name="x", phases=(
                DriftPhase(start_s=10.0), DriftPhase(start_s=5.0)))


@pytest.fixture(scope="module")
def power_model():
    """A small planned job priced as a JobPowerModel (bert-large x2)."""
    from repro.api import Planner, PlanSpec
    from repro.fleet.power import JobPowerModel

    spec = PlanSpec("bert-large", gpu="a100", stages=2, microbatches=4,
                    freq_stride=32)
    planner = Planner()
    stack = planner.result(spec)
    frontier = planner.frontier_for(spec)
    blocking = tuple(stack.profile.blocking_power(s) for s in range(2))
    return JobPowerModel(frontier, blocking)


class TestSimulateScenario:
    def test_modes_order_and_determinism(self, power_model):
        t0 = power_model.point(0).iteration_time_s
        policy = DriftPolicy(replan_rate=1.0 / (60 * t0), replan_burst=4,
                             probe_after_steps=25, backoff_base_s=5 * t0)
        sc = stale_profile(degree=1.25)
        rows = {m: simulate_scenario(power_model, sc, m, iterations=200,
                                     policy=policy)
                for m in ("hold", "closed", "oracle")}
        again = simulate_scenario(power_model, sc, "closed",
                                  iterations=200, policy=policy)
        assert again.to_dict() == rows["closed"].to_dict()
        hold, closed, oracle = (rows[m].energy_j
                                for m in ("hold", "closed", "oracle"))
        assert oracle < closed < hold
        assert all(rows[m].guardrail_violations == 0
                   for m in ("hold", "closed", "oracle"))

    def test_unknown_mode_rejected(self, power_model):
        with pytest.raises(ConfigurationError):
            simulate_scenario(power_model, stale_profile(), "psychic")


# -------------------------------------------------------------- server drift

@pytest.fixture()
def ready_server(small_dag, small_profile):
    """A server with one characterized job and a deploy-capture hook."""
    deploys = []
    server = PerseusServer(
        deploy_callback=lambda job_id, sched: deploys.append(
            (job_id, sched)))
    server.register_job("j", small_dag, tau=0.02)
    server.submit_profile("j", small_profile, blocking=True)
    return server, deploys


class TestServerDrift:
    def test_time_drift_replans_and_floors(self, ready_server):
        server, deploys = ready_server
        t0 = server.current_schedule("j").iteration_time
        server.enable_drift("j")
        before = len(deploys)
        for _ in range(4):
            action = server.report_measurement("j", t0 * 1.3)
            if action["replanned"]:
                break
        assert action["replanned"] and action["reason"] == "drift"
        assert server.current_schedule("j").iteration_time > t0
        assert len(deploys) > before  # the re-plan really deployed
        assert server.drift_stats()["j"]["replans"] == 1

    def test_report_before_ready_is_held_not_an_error(self, small_dag):
        server = PerseusServer()
        server.register_job("j", small_dag, tau=0.02)
        action = server.report_measurement("j", 1.0)
        assert action == {"state": "pending", "detected": False,
                          "replanned": False, "reason": None,
                          "held": "not_ready", "target_time_s": None}

    def test_lazy_enable_on_first_report(self, ready_server):
        server, _ = ready_server
        t0 = server.current_schedule("j").iteration_time
        action = server.report_measurement("j", t0)
        assert action["state"] == "tracking"
        assert server.drift_stats()["j"]["samples"] == 1

    def test_restart_readopts(self, ready_server):
        server, deploys = ready_server
        t0 = server.current_schedule("j").iteration_time
        server.enable_drift("j")
        for _ in range(4):
            server.report_measurement("j", t0 * 1.3)
        floored = server.current_schedule("j").iteration_time
        action = server.notify_restart("j")
        assert action["replanned"] and action["reason"] == "readopt"
        assert server.current_schedule("j").iteration_time == \
            pytest.approx(floored)

    def test_restart_without_drift_repushes(self, ready_server):
        server, deploys = ready_server
        before = len(deploys)
        assert server.notify_restart("j") is None
        assert len(deploys) == before + 1

    def test_announced_straggler_retires_drift_floor(self, ready_server):
        server, _ = ready_server
        t0 = server.current_schedule("j").iteration_time
        frontier = server.frontier_of("j")
        server.enable_drift("j")
        for _ in range(4):
            server.report_measurement("j", t0 * 1.3)
        assert server.drift_stats()["j"]["state"] == "drifted"
        server.set_straggler("j", accelerator_id=0, delay_s=0.0,
                             degree=1.5)
        # The announcement owns the floor now; the controller rebased.
        assert server.drift_stats()["j"]["state"] == "tracking"
        assert server._job("j").drift_floor_s is None
        # Eq. 2: the deploy moves to min(T*, max(T', T_min)).
        from repro.core.unified import energy_optimal_iteration_time

        expected = energy_optimal_iteration_time(
            frontier, 1.5 * frontier.t_min)
        sched = server.current_schedule("j")
        assert sched.iteration_time == pytest.approx(expected)
        assert sched.iteration_time > t0

    def test_energy_drift_reprofiles_stages(self, ready_server):
        server, _ = ready_server
        sched = server.current_schedule("j")
        t0 = sched.iteration_time
        job = server._job("j")
        planned = planned_stage_times(job.dag, sched)
        stages = sorted(planned)
        server.enable_drift("j")
        # Three in-band steps lock the self-baselined energy reference.
        for _ in range(3):
            server.report_measurement("j", t0, energy_j=1000.0)
        crawls_before = server._shared_planner().stats["frontier"]
        skewed = [planned[s] * (1.25 if s == stages[-1] else 1.0)
                  for s in stages]
        for _ in range(5):
            action = server.report_measurement(
                "j", t0, energy_j=1400.0, stage_time_s=skewed)
            if action["replanned"]:
                break
        assert action["replanned"]
        stats = server._shared_planner().stats
        assert stats["frontier"] == crawls_before + 1  # re-characterized
        assert job.drift_floor_s is None  # new baseline, not a floor


class TestServerRaces:
    def test_wait_ready_times_out_without_characterization(self,
                                                           small_dag):
        server = PerseusServer()
        server.register_job("j", small_dag, tau=0.02)
        with pytest.raises(ServerError, match="timed out"):
            server.wait_ready("j", timeout_s=0.05)
        # The job is not poisoned: characterization can still land.
        assert not server.is_ready("j")

    def test_straggler_during_characterization_applies(
            self, small_dag, small_profile, monkeypatch):
        """A ``set_straggler`` racing the frontier crawl must stick."""
        import repro.runtime.server as server_mod

        release = threading.Event()
        entered = threading.Event()
        real = server_mod.characterize_frontier

        def gated(*args, **kwargs):
            entered.set()
            assert release.wait(30.0)
            return real(*args, **kwargs)

        monkeypatch.setattr(server_mod, "characterize_frontier", gated)
        # A private planner: the process-wide default_planner() may
        # already hold this frontier, which would skip the crawl.
        from repro.api import Planner

        server = PerseusServer(planner=Planner())
        server.register_job("j", small_dag, tau=0.02)
        server.submit_profile("j", small_profile, blocking=False)
        assert entered.wait(30.0)
        # Mid-crawl: the notification must not be dropped.
        server.set_straggler("j", accelerator_id=0, delay_s=0.0,
                             degree=1.4)
        release.set()
        frontier = server.wait_ready("j", timeout_s=120.0)
        from repro.core.unified import energy_optimal_iteration_time

        expected = energy_optimal_iteration_time(
            frontier, 1.4 * frontier.t_min)
        sched = server.current_schedule("j")
        assert sched.iteration_time == pytest.approx(expected)
        assert sched.iteration_time > frontier.t_min


# ------------------------------------------------------------ engine in vivo

class TestSessionDriftLoop:
    def test_throttle_detect_replan_restart_recover(self):
        from repro.models.registry import build_model
        from repro.partition.algorithms import partition_model
        from repro.gpu.specs import A100_PCIE
        from repro.runtime.engine import TrainingEngine, TrainingSession

        model = build_model("bert-large", 2)
        part = partition_model(model, 2, A100_PCIE)
        eng = TrainingEngine(model, part, A100_PCIE, num_microbatches=4,
                             freq_stride=24, iterations_per_freq=1)
        session = TrainingSession(engine=eng, server=PerseusServer(),
                                  tau=0.02)
        policy = DriftPolicy(patience=2, replan_rate=1.0,
                             replan_burst=4, backoff_base_s=1.0,
                             probe_after_steps=6)
        for _ in range(100):
            if session.step().phase == "optimized":
                break
        session.enable_drift(policy=policy)
        session.step()
        planned = session.history[-1].iteration_time

        eng.set_stage_slowdown(1, 1.3)
        replanned = False
        for _ in range(12):
            session.step()
            if (session.last_drift_action or {}).get("replanned"):
                replanned = True
                break
        assert replanned
        stats = session.server.drift_stats()[session.job_id]
        assert stats["replans"] >= 1

        # Checkpoint/restart: default clocks come back, the held
        # decision is re-adopted immediately.
        action = session.restart()
        assert action is not None and action["replanned"]
        assert action["reason"] == "readopt"

        # The fault clears; the probe rediscovers the fast baseline.
        eng.set_stage_slowdown(1, 1.0)
        for _ in range(40):
            session.step()
            if session.server.drift_stats()[session.job_id]["recoveries"]:
                break
        stats = session.server.drift_stats()[session.job_id]
        assert stats["recoveries"] >= 1
        assert stats["guardrail_rejections"] == 0
        settled = session.history[-1].iteration_time
        assert settled <= planned * 1.05


# ----------------------------------------------------------- fleet injection

class TestFleetOnlineInjection:
    @pytest.fixture(scope="class")
    def trace(self):
        from repro.fleet import synthetic_trace

        return synthetic_trace(["bert-large"], 3, seed=7, stages=2,
                               microbatches=4, freq_stride=32)

    def test_driver_matches_baked_events_bit_for_bit(self, trace):
        from repro.drift import ScenarioDriver
        from repro.fleet import FleetSimulator

        sc = thermal_ramp(peak=1.3, start_s=5.0, ramp_steps=1,
                          step_s=10.0, hold_s=20.0)
        job_id = trace.jobs[0].job_id
        baked = trace.with_events(sc.to_events(job_id))
        offline = FleetSimulator(baked).run()

        driver = ScenarioDriver(job_id, sc)
        sim = FleetSimulator(trace, observers=[driver])
        online = sim.run()
        assert online.to_dict() == offline.to_dict()
        assert sim.drift_stats["replans"] >= 1
        assert sim.drift_stats["notifications"] == driver.applied

    def test_set_straggler_outside_run_raises(self, trace):
        from repro.fleet import FleetSimulator

        sim = FleetSimulator(trace)
        with pytest.raises(SimulationError):
            sim.schedule_wake(10.0)
        with pytest.raises(SimulationError):
            sim.set_straggler(trace.jobs[0].job_id, 1.3)

    def test_online_unknown_job_raises(self, trace):
        from repro.drift import ScenarioDriver
        from repro.fleet import FleetSimulator

        sc = stale_profile(degree=1.3)
        driver = ScenarioDriver("no-such-job", sc)
        sim = FleetSimulator(trace, observers=[driver])
        with pytest.raises(ConfigurationError, match="unknown fleet job"):
            sim.run()

    def test_wake_events_do_not_change_an_undriven_run(self, trace):
        from repro.fleet import FleetSimulator

        plain = FleetSimulator(trace).run()

        class Waker:
            def __init__(self):
                self.done = False

            def attach(self, sim):
                sim.schedule_wake(3.0)

            def __call__(self, sim, now):
                if not self.done and now >= 3.0:
                    self.done = True
                    sim.schedule_wake(now + 5.0)

        woken = FleetSimulator(trace, observers=[Waker()]).run()
        assert woken.to_dict() == plain.to_dict()


# -------------------------------------------------------------- daemon wire

class TestDaemonDriftRpc:
    def test_report_measurement_and_metrics(self):
        from repro.api import Planner, PlanSpec
        from repro.service import PlanningDaemon, ServiceClient

        with PlanningDaemon(planner=Planner(), port=0) as daemon:
            client = ServiceClient(daemon.url, tenant="team-a",
                                   timeout_s=120.0)
            spec = PlanSpec("bert-large", gpu="a100", stages=2,
                            microbatches=4, freq_stride=32)
            client.register_spec("job", spec)
            t0 = client.current_schedule("job").iteration_time
            for _ in range(4):
                action = client.report_measurement("job", t0 * 1.3)
                if action["replanned"]:
                    break
            assert action["replanned"]
            restart = client.notify_restart("job")
            assert restart["reason"] == "readopt"

            drift = client.stats()["drift"]
            assert drift["job"]["replans"] >= 1
            text = client.metrics_text()
            assert 'repro_drift_reports_total{state="tracking"}' in text
            assert 'repro_drift_replans_total{reason="drift"} 1' in text
            assert "repro_drift_loop_total" in text

    def test_tenant_isolation_of_drift_stats(self):
        from repro.api import Planner, PlanSpec
        from repro.service import PlanningDaemon, ServiceClient

        with PlanningDaemon(planner=Planner(), port=0) as daemon:
            a = ServiceClient(daemon.url, tenant="team-a",
                              timeout_s=120.0)
            b = ServiceClient(daemon.url, tenant="team-b",
                              timeout_s=120.0)
            spec = PlanSpec("bert-large", gpu="a100", stages=2,
                            microbatches=4, freq_stride=32)
            a.register_spec("job", spec)
            t0 = a.current_schedule("job").iteration_time
            a.report_measurement("job", t0)
            assert "job" in a.stats()["drift"]
            assert b.stats()["drift"] == {}
