"""Heterogeneous (per-stage GPU mix) planning: spec, planner, strategies.

Covers the ISSUE-2 acceptance surface: mixed-GPU JSON round-trips,
wrong-length validation, per-stage profile-cache sharing in ``sweep()``,
and the homogeneous-tuple == single-name equivalence against the PR-1
single-GPU planning path (which is byte-identical code).
"""

import io
import json

import pytest

from repro.api import (
    PlanSpec,
    Planner,
    list_strategies,
    mixed_cluster_specs,
    sweep,
)
from repro.api.spec import SPEC_FORMAT_VERSION
from repro.core.serialization import load_json, save_json
from repro.exceptions import ConfigurationError, PartitionError
from repro.gpu.specs import get_gpu, is_homogeneous, resolve_gpus
from repro.models.registry import build_model
from repro.partition.algorithms import (
    min_imbalance_partition,
    min_imbalance_partition_hetero,
    partition_model,
)
from repro.partition.imbalance import stage_latencies_hetero

#: Small, fast mixed-cluster request reused across the module.
MIXED = PlanSpec("bert-large", gpu=("a100", "a40"), stages=2,
                 microbatches=3, freq_stride=24)
SINGLE = MIXED.replace(gpu="a100")


class TestHeterogeneousSpec:
    def test_tuple_gpu_accepted_and_hashable(self):
        assert MIXED.gpu == ("a100", "a40")
        assert MIXED.gpu_names == ("a100", "a40")
        assert MIXED.is_heterogeneous
        hash(MIXED)  # must stay usable as a memoization key

    def test_single_name_broadcasts(self):
        assert SINGLE.gpu_names == ("a100", "a100")
        assert not SINGLE.is_heterogeneous

    def test_list_normalized_to_tuple(self):
        spec = MIXED.replace(gpu=["a100", "a40"])
        assert spec.gpu == ("a100", "a40")
        assert spec == MIXED

    @pytest.mark.parametrize("gpu", [
        ("a100",),                      # too short
        ("a100", "a40", "a40"),         # too long
        (),                             # empty
        ("a100", ""),                   # empty entry
        ("a100", 7),                    # non-string entry
    ])
    def test_wrong_gpu_tuples_rejected(self, gpu):
        with pytest.raises(ConfigurationError):
            PlanSpec("bert-large", gpu=gpu, stages=2)

    def test_replace_stages_revalidates_gpu_length(self):
        with pytest.raises(ConfigurationError):
            MIXED.replace(stages=4)

    def test_json_round_trip_mixed(self):
        payload = MIXED.to_dict()
        assert payload["version"] == SPEC_FORMAT_VERSION
        assert payload["gpu"] == ["a100", "a40"]  # JSON-friendly list
        restored = PlanSpec.from_json(MIXED.to_json())
        assert restored == MIXED
        assert restored.gpu == ("a100", "a40")

    def test_round_trip_through_file_helpers(self):
        buf = io.StringIO()
        save_json(MIXED, buf)
        buf.seek(0)
        assert load_json(buf) == MIXED

    def test_version1_payload_still_loads(self):
        payload = SINGLE.to_dict()
        payload["version"] = 1
        payload["gpu"] = "a100"
        assert PlanSpec.from_dict(payload) == SINGLE

    def test_version1_payload_rejects_gpu_list(self):
        payload = MIXED.to_dict()
        payload["version"] = 1
        with pytest.raises(ConfigurationError, match="version 2"):
            PlanSpec.from_dict(payload)

    def test_unsupported_version_rejected(self):
        payload = MIXED.to_dict()
        payload["version"] = 99
        with pytest.raises(ConfigurationError):
            PlanSpec.from_dict(payload)


class TestResolveGpus:
    def test_broadcast_and_alias_resolution(self):
        gpus = resolve_gpus("a100", 3)
        assert len(gpus) == 3 and is_homogeneous(gpus)

    def test_alias_mix_is_homogeneous_after_resolution(self):
        gpus = resolve_gpus(("a100", "a100-pcie"), 2)
        assert is_homogeneous(gpus)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_gpus(("a100", "a40"), 3)


class TestHeterogeneousPartition:
    def test_slower_gpu_gets_fewer_layers(self):
        model = build_model("bert-large", None)
        mixed = partition_model(model, 2, ("a100", "a40"))
        counts = mixed.stage_layer_counts()
        # The A40 is the lower-throughput device: the minimum-imbalance
        # search must compensate by assigning it fewer layers than the
        # A100 stage receives.
        assert counts[1] < counts[0]

    def test_homogeneous_tuple_matches_single_gpu_partition(self):
        model = build_model("bert-large", None)
        single = partition_model(model, 2, get_gpu("a100"))
        tupled = partition_model(model, 2, ("a100", "a100"))
        assert single.boundaries == tupled.boundaries
        assert single.stage_latencies == tupled.stage_latencies
        assert single.ratio == tupled.ratio

    def test_hetero_dp_prices_stages_on_their_own_tables(self):
        fast, slow = [1.0, 1.0, 1.0, 1.0], [2.0, 2.0, 2.0, 2.0]
        result = min_imbalance_partition_hetero([fast, slow], 2)
        # Stage 1 runs each layer twice as slow, so perfect balance puts
        # ~2/3 of the layers on stage 0.
        assert result.boundaries[1] == 3
        assert result.ratio == pytest.approx(3.0 / 2.0)

    def test_hetero_dp_rejects_wrong_table_count(self):
        with pytest.raises(PartitionError):
            min_imbalance_partition_hetero([[1.0, 1.0]], 2)
        with pytest.raises(PartitionError):
            min_imbalance_partition_hetero(
                [[1.0, 1.0], [1.0]], 2
            )

    def test_stage_latencies_hetero_charges_tail_to_last_stage(self):
        lats = stage_latencies_hetero(
            [[1.0, 1.0], [3.0, 3.0]], [0, 1, 2], [0.5, 0.25]
        )
        assert lats == [1.0, 3.25]
        with pytest.raises(PartitionError):
            stage_latencies_hetero([[1.0, 1.0]], [0, 1, 2], [0.0])

    def test_zero_stages_still_raises_partition_error(self):
        with pytest.raises(PartitionError):
            min_imbalance_partition([1.0, 2.0, 3.0], 0)
        with pytest.raises(PartitionError):
            min_imbalance_partition_hetero([], 0)

    def test_custom_spec_reusing_registry_name_not_conflated(self):
        import dataclasses

        model = build_model("bert-large", None)
        a100 = get_gpu("a100")
        derated = dataclasses.replace(
            a100, peak_tflops=a100.peak_tflops / 2
        )
        pure = partition_model(model, 2, (a100, a100))
        mixed = partition_model(model, 2, (a100, derated))
        # Same .name, different spec value: the derated stage must be
        # priced on its own (slower) table, shifting the boundaries.
        assert mixed.boundaries != pure.boundaries

    def test_identical_tables_match_homogeneous_dp(self):
        table = [1.0, 2.0, 3.0, 1.0, 2.0]
        single = min_imbalance_partition(table, 2, tail_latency=0.5)
        hetero = min_imbalance_partition_hetero(
            [table, table], 2, [0.5, 0.5]
        )
        assert single.boundaries == hetero.boundaries
        assert single.ratio == hetero.ratio


class TestHeterogeneousProfile:
    def test_per_stage_ladders_and_blocking_power(self):
        planner = Planner()
        profile = planner.result(MIXED).profile
        a100, a40 = get_gpu("a100"), get_gpu("a40")
        # Each stage sweeps its own device's ladder from its own max clock.
        stage0_max = max(
            m.freq_mhz for m in profile.get((0, "forward")).measurements
        )
        stage1_max = max(
            m.freq_mhz for m in profile.get((1, "forward")).measurements
        )
        assert stage0_max == a100.max_freq
        assert stage1_max == a40.max_freq
        assert stage1_max > stage0_max  # A40 clocks past the A100 ceiling
        # Per-stage blocking powers, with the scalar kept as the mean.
        assert profile.stage_blocking_w == {0: a100.blocking_w,
                                            1: a40.blocking_w}
        assert profile.blocking_power(0) == a100.blocking_w
        assert profile.blocking_power(1) == a40.blocking_w
        assert profile.p_blocking_w == pytest.approx(
            (a100.blocking_w + a40.blocking_w) / 2
        )

    def test_mixed_profile_serialization_round_trip(self):
        planner = Planner()
        profile = planner.result(MIXED).profile
        buf = io.StringIO()
        save_json(profile, buf)
        # Mixed profiles are stamped version 2 so pre-mixed-cluster
        # readers reject them instead of silently averaging blocking
        # powers; homogeneous profiles keep writing version 1.
        assert json.loads(buf.getvalue())["version"] == 2
        buf.seek(0)
        restored = load_json(buf)
        assert restored.stage_blocking_w == profile.stage_blocking_w
        assert restored.p_blocking_w == profile.p_blocking_w

    def test_homogeneous_profile_keeps_version_1(self):
        planner = Planner()
        buf = io.StringIO()
        save_json(planner.result(SINGLE).profile, buf)
        assert json.loads(buf.getvalue())["version"] == 1

    def test_homogeneous_profile_has_no_stage_map(self):
        planner = Planner()
        profile = planner.result(SINGLE).profile
        assert profile.stage_blocking_w is None


class TestHomogeneousTupleEquivalence:
    def test_bit_for_bit_against_single_name_plans(self):
        planner = Planner()
        for name in list_strategies():
            single = planner.plan(SINGLE.replace(strategy=name))
            tupled = planner.plan(
                SINGLE.replace(gpu=("a100", "a100"), strategy=name)
            )
            assert single.plan == tupled.plan
            assert single.energy_j == tupled.energy_j
            assert single.iteration_time_s == tupled.iteration_time_s

    def test_homogeneous_tuple_shares_every_cache(self):
        planner = Planner()
        s1 = planner.result(SINGLE)
        s2 = planner.result(SINGLE.replace(gpu=("a100", "a100")))
        assert s1.profile is s2.profile
        assert s1.partition is s2.partition
        assert s1.optimizer is s2.optimizer
        assert planner.stats["profile"] == 1
        assert planner.stats["partition"] == 1

    def test_alias_tuple_also_collapses(self):
        planner = Planner()
        planner.result(SINGLE)
        planner.result(SINGLE.replace(gpu=("a100", "a100-pcie")))
        assert planner.stats["profile"] == 1


class TestStageProfileSharing:
    def test_sweep_shares_stage_sweeps_across_strategies(self):
        planner = Planner()
        reports = planner.sweep(
            MIXED.replace(strategy=name) for name in list_strategies()
        )
        assert len(reports) == len(list_strategies())
        # One mixed profile, assembled from exactly 2 stages x 2 kinds
        # of per-stage sweeps -- shared by all six strategies.
        assert planner.stats["profile"] == 1
        assert planner.stats["stage_profile"] == 4

    def test_new_profile_key_reuses_same_gpu_stage_sweeps(self):
        planner = Planner()
        planner.build_stack("bert-large", gpu=("a100", "a40"), stages=2,
                            microbatches=3, freq_stride=24, seed=0)
        assert planner.stats["profile"] == 1
        assert planner.stats["stage_profile"] == 4
        # A different seed is a different profile key, but with zero
        # noise every (gpu, stage work, stride) sweep is already cached.
        planner.build_stack("bert-large", gpu=("a100", "a40"), stages=2,
                            microbatches=3, freq_stride=24, seed=1)
        assert planner.stats["profile"] == 2
        assert planner.stats["stage_profile"] == 4

    def test_clear_drops_stage_sweeps(self):
        planner = Planner()
        planner.plan(MIXED)
        planner.clear()
        planner.plan(MIXED)
        assert planner.stats["stage_profile"] == 8


class TestMixedClusterSweep:
    def test_cartesian_pool_expansion(self):
        specs = mixed_cluster_specs(SINGLE, ["a100", "a40"])
        assert len(specs) == 4  # 2 choices ** 2 stages
        assert {s.gpu for s in specs} == {
            ("a100", "a100"), ("a100", "a40"),
            ("a40", "a100"), ("a40", "a40"),
        }

    def test_per_stage_choice_lists(self):
        specs = mixed_cluster_specs(SINGLE, [["a100"], ["a100", "a40"]])
        assert [s.gpu for s in specs] == [
            ("a100", "a100"), ("a100", "a40")
        ]

    def test_wrong_choice_list_count_rejected(self):
        with pytest.raises(ConfigurationError):
            mixed_cluster_specs(SINGLE, [["a100"]] * 3)
        with pytest.raises(ConfigurationError):
            mixed_cluster_specs(SINGLE, [])

    def test_bare_string_pool_rejected(self):
        # A single name would otherwise expand character-by-character.
        with pytest.raises(ConfigurationError, match="single name"):
            mixed_cluster_specs(SINGLE, "a100")

    def test_bare_string_stage_entry_means_fixed_stage(self):
        specs = mixed_cluster_specs(SINGLE, ["a100", ["a100", "a40"]])
        assert [s.gpu for s in specs] == [
            ("a100", "a100"), ("a100", "a40")
        ]

    def test_sweep_rows_comparable_on_mixed_cluster(self):
        rows = sweep(
            (MIXED.replace(strategy=n) for n in list_strategies()),
            planner=Planner(),
        )
        base = {r.strategy: r for r in rows}["max-freq"]
        assert base.energy_savings_pct == pytest.approx(0.0)
        for r in rows:
            assert r.baseline_energy_j == pytest.approx(base.energy_j)
            assert r.to_dict()["gpu"] == "a100,a40"


class TestHeterogeneousStragglers:
    def test_slow_gpu_type_degree_from_spec(self):
        from repro.stragglers import SlowGPUType

        planner = Planner()
        scenario = SlowGPUType.from_spec(MIXED, planner=planner)
        # The all-A100 reference is faster than the mixed deployment, so
        # the anticipated degree exceeds 1 (it is the straggler T'/T).
        assert scenario.reference_gpu == "a100"
        assert scenario.degree > 1.0
        assert scenario.gpu_names == ("a100", "a40")

    def test_homogeneous_spec_yields_unit_degree(self):
        from repro.stragglers import SlowGPUType

        scenario = SlowGPUType.from_spec(SINGLE, planner=Planner())
        assert scenario.degree == 1.0


class TestHeterogeneousServer:
    def test_register_mixed_spec_characterizes(self):
        from repro.runtime.server import PerseusServer

        server = PerseusServer()
        server.register_spec("job-mixed", MIXED, planner=Planner(),
                             blocking=True)
        frontier = server.frontier_of("job-mixed")
        assert frontier.t_min <= frontier.t_star


class TestHeterogeneousCLI:
    def test_compare_runs_mixed_cluster(self, capsys):
        from repro.cli import main

        rc = main(["compare", "bert-large", "--gpu", "a100,a40",
                   "--stages", "2", "--microbatches", "3",
                   "--freq-stride", "24"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in list_strategies():
            assert name in out
        assert "a100,a40" in out

    def test_plan_prints_per_stage_mix(self, capsys):
        from repro.cli import main

        rc = main(["plan", "bert-large", "--gpu", "a100,a40",
                   "--stages", "2", "--microbatches", "3",
                   "--freq-stride", "24"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage0=A100-PCIe-80G" in out
        assert "stage1=A40-48G" in out

    def test_wrong_length_gpu_list_exits_2(self, capsys):
        from repro.cli import main

        rc = main(["plan", "bert-large", "--gpu", "a100,a40",
                   "--stages", "3", "--microbatches", "3",
                   "--freq-stride", "24"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_strategies_prints_descriptions(self, capsys):
        from repro.cli import main

        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "Graph-cut frontier planner" in out
        for name in list_strategies():
            assert name in out
