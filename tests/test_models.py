"""Model zoo: parameter counts, layer structure, work scaling, sharding."""

import pytest

from repro.exceptions import ConfigurationError
from repro.gpu.specs import A100_PCIE
from repro.models.layers import LayerSpec, ModelSpec
from repro.models.registry import build_model, get_entry, list_models
from repro.models.transformer import TransformerConfig, build_transformer
from repro.models.wideresnet import WideResNetConfig, build_wide_resnet
from repro.gpu.energy_model import WorkProfile


class TestParameterCounts:
    """Zoo sizes must land near their published parameter counts."""

    @pytest.mark.parametrize(
        "name,expected_b",
        [
            ("gpt3-xl", 1.3), ("gpt3-2.7b", 2.7), ("gpt3-6.7b", 6.7),
            ("gpt3-13b", 13.0), ("gpt3-175b", 175.0),
            ("bloom-3b", 3.0), ("bloom-176b", 176.0),
            ("bert-base", 0.11), ("bert-large", 0.33),
            ("t5-3b", 2.9),
            ("wide-resnet50", 0.8), ("wide-resnet101", 1.5),
        ],
    )
    def test_param_count(self, name, expected_b):
        model = build_model(name)
        assert model.params / 1e9 == pytest.approx(expected_b, rel=0.25)


class TestLayerStructure:
    """Layer counts must match the partition tables of Appendix B."""

    @pytest.mark.parametrize(
        "name,layers",
        [
            ("gpt3-xl", 25), ("gpt3-2.7b", 33), ("gpt3-13b", 41),
            ("gpt3-175b", 97), ("bloom-3b", 31), ("bloom-176b", 71),
            ("bert-base", 13), ("bert-huge", 25),
            ("t5-base", 25), ("t5-3b", 49),
            ("wide-resnet50", 18), ("wide-resnet101", 35),
        ],
    )
    def test_partitionable_layer_count(self, name, layers):
        assert build_model(name).num_layers == layers

    def test_transformer_has_pinned_lm_head(self):
        model = build_model("gpt3-xl")
        assert model.tail is not None
        assert model.tail.kind == "lm_head"

    def test_wide_resnet_has_no_tail(self):
        model = build_model("wide-resnet101")
        assert model.tail is None
        kinds = {layer.kind for layer in model.layers}
        assert kinds == {"stem", "bottleneck", "classifier"}

    def test_t5_has_heavier_decoder_layers(self):
        """Appendix B.1: cross attention makes decoder layers heavier."""
        model = build_model("t5-3b")
        enc = next(l for l in model.layers if l.name == "encoder.0")
        dec = next(l for l in model.layers if l.name == "decoder.0")
        assert dec.forward.flops > enc.forward.flops


class TestWorkScaling:
    def test_work_scales_linearly_with_microbatch(self):
        m1 = build_model("gpt3-xl", 1)
        m4 = build_model("gpt3-xl", 4)
        f1 = m1.layers[5].forward.flops
        f4 = m4.layers[5].forward.flops
        assert f4 == pytest.approx(4 * f1)

    def test_backward_multiplier_with_recompute(self):
        cfg = TransformerConfig("t", 4, 256, 4, 1000, 128)
        with_rc = build_transformer(cfg, 1, recompute_activations=True)
        without = build_transformer(cfg, 1, recompute_activations=False)
        layer_rc = with_rc.layers[1]
        layer_no = without.layers[1]
        assert layer_rc.backward.flops == pytest.approx(
            1.5 * layer_no.backward.flops
        )

    def test_shard_divides_work(self):
        model = build_model("gpt3-xl")
        sharded = model.shard(4)
        assert sharded.layers[3].forward.flops == pytest.approx(
            model.layers[3].forward.flops / 4
        )
        assert sharded.tail.forward.flops == pytest.approx(
            model.tail.forward.flops / 4
        )

    def test_shard_identity(self):
        model = build_model("gpt3-xl")
        assert model.shard(1) is model or model.shard(1).layers == model.layers


class TestStageAggregation:
    def test_stage_work_sums_layers(self):
        model = build_model("gpt3-xl")
        total = model.stage_forward_work(0, 3, last_stage=False)
        manual = sum(l.forward.flops for l in model.layers[:3])
        assert total.flops == pytest.approx(manual)

    def test_last_stage_includes_tail(self):
        model = build_model("gpt3-xl")
        without = model.stage_forward_work(20, 25, last_stage=False)
        with_tail = model.stage_forward_work(20, 25, last_stage=True)
        assert with_tail.flops > without.flops

    def test_layer_latencies_positive(self):
        model = build_model("bloom-3b")
        lats = model.layer_forward_latencies(A100_PCIE)
        assert len(lats) == model.num_layers
        assert all(t > 0 for t in lats)

    def test_empty_stage_rejected(self):
        model = build_model("gpt3-xl")
        with pytest.raises(ConfigurationError):
            model.stage_forward_work(3, 3, last_stage=False)


class TestRegistry:
    def test_list_models_nonempty(self):
        assert len(list_models()) >= 16

    def test_aliases(self):
        assert get_entry("gpt3-1.3b").key == "gpt3-xl"
        assert get_entry("wrn101").key == "wide-resnet101"

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError):
            build_model("llama-7b")

    def test_bad_microbatch(self):
        with pytest.raises(ConfigurationError):
            build_model("gpt3-xl", 0)


class TestWideResNet:
    def test_depth_plan_lengths(self):
        assert len(WideResNetConfig("w", 50).bottleneck_plan()) == 16
        assert len(WideResNetConfig("w", 101).bottleneck_plan()) == 33

    def test_rejects_unknown_depth(self):
        with pytest.raises(ConfigurationError):
            WideResNetConfig("w", 34)

    def test_stage_resolution_decreases_flops_balance(self):
        """Bottlenecks of different stages have comparable flops by design."""
        model = build_wide_resnet(WideResNetConfig("w", 50, 8), 8)
        flops = [l.forward.flops for l in model.layers if l.kind == "bottleneck"]
        assert max(flops) / min(flops) < 6.0


def test_model_spec_requires_layers():
    with pytest.raises(ConfigurationError):
        ModelSpec(name="empty", layers=())


def test_layer_spec_shard():
    layer = LayerSpec("l", "transformer", WorkProfile(1e9, 1e6))
    assert layer.shard(2).forward.flops == pytest.approx(5e8)
    with pytest.raises(ConfigurationError):
        layer.shard(0)
