"""Execution simulator: dependency order, Eq. 3 accounting, stragglers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.pipeline.dag import build_pipeline_dag
from repro.pipeline.schedules import schedule_1f1b
from repro.sim.datapar import run_with_straggler, straggle_durations, synchronize
from repro.sim.executor import (
    execute,
    execute_frequency_plan,
    max_frequency_plan,
    min_energy_plan,
)
from repro.sim.timeline import extract_timeline


@pytest.fixture(scope="module")
def dag():
    return build_pipeline_dag(schedule_1f1b(4, 6))


def uniform(dag, duration=1.0, power=100.0):
    return (
        {n: duration for n in dag.nodes},
        {n: power for n in dag.nodes},
    )


class TestExecute:
    def test_dependencies_respected(self, dag):
        durations, powers = uniform(dag)
        execution = execute(dag, durations, powers, p_blocking_w=50.0)
        end = {r.node: r.end for r in execution.records}
        start = {r.node: r.start for r in execution.records}
        for u in dag.nodes:
            for v in dag.succ[u]:
                if v in dag.nodes:
                    assert start[v] >= end[u] - 1e-12

    def test_stage_exclusive(self, dag):
        durations, powers = uniform(dag)
        execution = execute(dag, durations, powers, p_blocking_w=50.0)
        for s in range(4):
            recs = execution.stage_records(s)
            for a, b in zip(recs, recs[1:]):
                assert b.start >= a.end - 1e-12

    def test_iteration_time_is_makespan(self, dag):
        durations, powers = uniform(dag)
        execution = execute(dag, durations, powers, p_blocking_w=50.0)
        assert execution.iteration_time == pytest.approx(
            max(r.end for r in execution.records)
        )

    def test_compute_energy_is_sum(self, dag):
        durations, powers = uniform(dag, duration=2.0, power=150.0)
        execution = execute(dag, durations, powers, p_blocking_w=50.0)
        assert execution.compute_energy() == pytest.approx(
            len(dag.nodes) * 2.0 * 150.0
        )

    def test_blocking_energy_formula(self, dag):
        """Eq. 3: blocking = P_block * (N*T - sum(t_i))."""
        durations, powers = uniform(dag)
        execution = execute(dag, durations, powers, p_blocking_w=80.0)
        t = execution.iteration_time
        busy = sum(durations.values())
        assert execution.blocking_energy() == pytest.approx(
            80.0 * (4 * t - busy)
        )

    def test_blocking_energy_nonnegative(self, dag):
        durations, powers = uniform(dag)
        execution = execute(dag, durations, powers, p_blocking_w=80.0)
        assert execution.blocking_energy() >= 0

    def test_missing_node_rejected(self, dag):
        with pytest.raises(SimulationError):
            execute(dag, {0: 1.0}, {0: 100.0}, p_blocking_w=50.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_durations_hold_invariants(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        dag = build_pipeline_dag(schedule_1f1b(3, 4))
        durations = {n: float(rng.uniform(0.1, 2.0)) for n in dag.nodes}
        powers = {n: float(rng.uniform(80, 300)) for n in dag.nodes}
        execution = execute(dag, durations, powers, p_blocking_w=60.0)
        # total energy equals integral of power over N * T horizon
        total = execution.total_energy()
        t = execution.iteration_time
        manual = sum(durations[n] * powers[n] for n in dag.nodes) + 60.0 * (
            3 * t - sum(durations.values())
        )
        assert total == pytest.approx(manual, rel=1e-9)
        assert t >= max(durations.values())


class TestFrequencyPlans:
    def test_max_plan_fastest(self, dag, small_profile):
        base = execute_frequency_plan(
            dag, max_frequency_plan(dag, small_profile), small_profile
        )
        slow = execute_frequency_plan(
            dag, min_energy_plan(dag, small_profile), small_profile
        )
        assert base.iteration_time < slow.iteration_time
        assert slow.compute_energy() < base.compute_energy()

    def test_min_energy_plan_saves_energy(self, dag, small_profile):
        """§2.4: the upper-bound plan cuts energy despite waiting longer."""
        base = execute_frequency_plan(
            dag, max_frequency_plan(dag, small_profile), small_profile
        )
        slow = execute_frequency_plan(
            dag, min_energy_plan(dag, small_profile), small_profile
        )
        assert slow.total_energy() < base.total_energy()

    def test_average_power_drops(self, dag, small_profile):
        base = execute_frequency_plan(
            dag, max_frequency_plan(dag, small_profile), small_profile
        )
        slow = execute_frequency_plan(
            dag, min_energy_plan(dag, small_profile), small_profile
        )
        assert slow.average_power() < base.average_power()


class TestDataParallel:
    def test_sync_time_is_max(self, dag):
        durations, powers = uniform(dag)
        fast = execute(dag, durations, powers, p_blocking_w=50.0)
        slow = execute(
            dag, straggle_durations(durations, 1.5), powers, p_blocking_w=50.0
        )
        result = synchronize([fast, slow, fast])
        assert result.sync_time == pytest.approx(slow.iteration_time)
        assert result.num_pipelines == 3

    def test_total_energy_includes_waiting(self, dag):
        durations, powers = uniform(dag)
        fast = execute(dag, durations, powers, p_blocking_w=50.0)
        slow = execute(
            dag, straggle_durations(durations, 1.5), powers, p_blocking_w=50.0
        )
        alone = fast.total_energy()
        result = synchronize([fast, slow])
        assert result.pipeline_energy(0) > alone  # waited for the straggler

    def test_straggler_cannot_speed_up(self, dag):
        with pytest.raises(SimulationError):
            straggle_durations({0: 1.0}, 0.9)

    def test_run_with_straggler(self, dag, small_profile):
        plan = max_frequency_plan(dag, small_profile)
        result = run_with_straggler(
            dag, small_profile, plan, None, num_pipelines=4,
            straggler_slowdown=1.3,
        )
        assert result.num_pipelines == 4
        base = execute_frequency_plan(dag, plan, small_profile)
        assert result.sync_time == pytest.approx(base.iteration_time * 1.3)


class TestTimeline:
    def test_rows_cover_horizon(self, dag):
        durations, powers = uniform(dag)
        execution = execute(dag, durations, powers, p_blocking_w=50.0)
        rows = extract_timeline(execution)
        assert len(rows) == 4
        for row in rows:
            assert row.segments[0].start == pytest.approx(0.0)
            assert row.segments[-1].end == pytest.approx(
                execution.iteration_time
            )
            for a, b in zip(row.segments, row.segments[1:]):
                assert b.start == pytest.approx(a.end)

    def test_segment_energy_consistent(self, dag):
        durations, powers = uniform(dag, power=200.0)
        execution = execute(dag, durations, powers, p_blocking_w=50.0)
        rows = extract_timeline(execution)
        total = sum(
            seg.duration * seg.power_w for row in rows for seg in row.segments
        )
        assert total == pytest.approx(execution.total_energy(), rel=1e-9)

    def test_busy_fraction(self, dag):
        durations, powers = uniform(dag)
        execution = execute(dag, durations, powers, p_blocking_w=50.0)
        rows = extract_timeline(execution)
        last = rows[-1]  # final stage is busiest in 1F1B
        assert last.busy_fraction(execution.iteration_time) >= max(
            r.busy_fraction(execution.iteration_time) for r in rows[:-1]
        ) - 1e-9
