"""Flat-array kernel vs the REPRO_SLOW_PATH dict oracle.

The compiled hot path must be *bit-identical* to the preserved seed
implementation: same frontier points, same durations, same realized
clocks, float for float.  These tests pin that contract across
homogeneous, mixed-GPU and straggler (slow-silicon stage) pipelines,
plus unit coverage for :class:`~repro.graph.compiled.CompiledDag`,
:class:`~repro.graph.maxflow.FlowArena` reset/reuse and the shared
bounded-flow core against the seed reference solver.
"""

from __future__ import annotations

import random
from array import array

import pytest

import repro.graph.compiled as compiled_mod
from repro.api import Planner, PlanSpec
from repro.core.costmodel import build_cost_models
from repro.core.frontier import characterize_frontier
from repro.core.nextschedule import (
    CostTable,
    _get_next_schedule_dict,
    compiled_kernel,
    get_next_schedule,
    next_schedule_flat,
)
from repro.graph.compiled import CompiledDag
from repro.graph.critical import critical_edge_indices, event_times
from repro.graph.edgecentric import to_edge_centric
from repro.graph.lowerbounds import (
    BoundedEdge,
    max_flow_with_lower_bounds,
    max_flow_with_lower_bounds_reference,
    solve_bounded_arrays,
)
from repro.graph.maxflow import Dinic, FlowArena, FlowNetwork

#: One spec per pipeline flavor the ISSUE's equivalence suite names:
#: homogeneous, heterogeneous GPU tuple, and a straggler mix (one stage
#: on slower silicon, the SlowGPUType deployment planned natively).
SPECS = {
    "homogeneous": PlanSpec(model="gpt3-xl", gpu="a100", stages=2,
                            microbatches=4, freq_stride=8),
    "hetero": PlanSpec(model="gpt3-xl", gpu=("a100", "a40"), stages=2,
                       microbatches=4, freq_stride=8),
    "straggler": PlanSpec(model="gpt3-xl",
                          gpu=("a100", "a100", "a100", "a40"),
                          stages=4, microbatches=6, freq_stride=8),
}

_PLANNER = Planner()


def _stack(name):
    return _PLANNER.result(SPECS[name])


def _point_key(frontier):
    return [
        (p.iteration_time, p.effective_energy, p.compute_energy,
         p.durations, p.frequencies)
        for p in frontier.points
    ]


def _node_cost(stack):
    models = build_cost_models(stack.profile)
    return {
        node: models[stack.dag.nodes[node].op_key]
        for node in stack.dag.nodes
    }


class TestFrontierEquivalence:
    """Whole-crawl bit-identity: kernel vs REPRO_SLOW_PATH=1 oracle."""

    @pytest.mark.parametrize("flavor", sorted(SPECS))
    def test_bit_identical_frontiers(self, flavor, monkeypatch):
        stack = _stack(flavor)
        tau = stack.optimizer.tau
        fast = characterize_frontier(stack.dag, stack.profile, tau=tau)
        monkeypatch.setenv("REPRO_SLOW_PATH", "1")
        slow = characterize_frontier(stack.dag, stack.profile, tau=tau)
        assert slow.steps == fast.steps
        assert _point_key(slow) == _point_key(fast)
        assert fast.stats["timings"]["kernel"] == "flat"
        assert slow.stats["timings"]["kernel"] == "dict"

    def test_timings_are_recorded(self):
        stack = _stack("homogeneous")
        frontier = characterize_frontier(
            stack.dag, stack.profile, tau=stack.optimizer.tau
        )
        timings = frontier.stats["timings"]
        assert timings["cuts"] > 0
        assert timings["maxflow_s"] > 0.0
        assert timings["event_times_s"] > 0.0
        for key in ("instance_build_s", "schedule_s", "repairs"):
            assert key in timings


class TestStepEquivalence:
    """Property-style: random duration assignments, one step each."""

    @pytest.mark.parametrize("flavor", sorted(SPECS))
    def test_random_durations_step_identical(self, flavor):
        stack = _stack(flavor)
        node_cost = _node_cost(stack)
        ecd = to_edge_centric(stack.dag)
        tau = stack.optimizer.tau
        rng = random.Random(1234)
        for _ in range(25):
            durations = {
                n: cm.t_min + rng.random() * (cm.t_max - cm.t_min)
                for n, cm in node_cost.items()
            }
            fast = get_next_schedule(ecd, durations, node_cost, tau)
            slow = _get_next_schedule_dict(ecd, durations, node_cost, tau)
            assert fast == slow  # both None, or exactly equal dicts

    def test_event_pass_matches_dict_event_times(self):
        stack = _stack("homogeneous")
        node_cost = _node_cost(stack)
        ecd = to_edge_centric(stack.dag)
        durations = {n: cm.t_max for n, cm in node_cost.items()}
        kern = CompiledDag.from_edge_centric(ecd, node_cost)
        flat = kern.event_pass(kern.durations_array(durations))
        reference = event_times(ecd, durations)
        assert flat.as_event_times() == reference
        assert flat.makespan == reference.makespan

    def test_critical_pass_matches_dict_extraction(self):
        stack = _stack("straggler")
        node_cost = _node_cost(stack)
        ecd = to_edge_centric(stack.dag)
        kern = CompiledDag.from_edge_centric(ecd, node_cost)
        rng = random.Random(7)
        for _ in range(10):
            durations = {
                n: cm.t_min + rng.random() * (cm.t_max - cm.t_min)
                for n, cm in node_cost.items()
            }
            flat = kern.critical_pass(kern.durations_array(durations))
            assert flat.critical == critical_edge_indices(ecd, durations)

    def test_numpy_extraction_matches_flat(self, monkeypatch):
        if compiled_mod._np is None:
            pytest.skip("numpy unavailable")
        stack = _stack("homogeneous")
        node_cost = _node_cost(stack)
        ecd = to_edge_centric(stack.dag)
        durations = {n: cm.t_max for n, cm in node_cost.items()}
        kern_flat = CompiledDag.from_edge_centric(ecd, node_cost)
        flat = kern_flat.critical_pass(kern_flat.durations_array(durations))
        monkeypatch.setattr(compiled_mod, "NUMPY_MIN_EDGES", 0)
        kern_np = CompiledDag.from_edge_centric(ecd, node_cost)
        vectorized = kern_np.critical_pass(
            kern_np.durations_array(durations)
        )
        assert vectorized.critical == flat.critical
        assert vectorized.earliest == flat.earliest
        assert vectorized.latest == flat.latest


class TestCompiledDag:
    def test_makespan_matches_dag_iteration_time(self):
        stack = _stack("homogeneous")
        node_cost = _node_cost(stack)
        ecd = to_edge_centric(stack.dag)
        kern = CompiledDag.from_edge_centric(ecd, node_cost)
        durations = {n: cm.t_max for n, cm in node_cost.items()}
        assert kern.makespan(kern.durations_array(durations)) == \
            stack.dag.iteration_time(durations)

    def test_forward_reuse_is_exact(self):
        stack = _stack("homogeneous")
        node_cost = _node_cost(stack)
        ecd = to_edge_centric(stack.dag)
        kern = CompiledDag.from_edge_centric(ecd, node_cost)
        dur = kern.durations_array(
            {n: cm.t_max for n, cm in node_cost.items()}
        )
        earliest, makespan = kern.forward_pass(dur)
        reused = kern.critical_pass(dur, forward=earliest)
        fresh = kern.critical_pass(dur)
        assert reused.makespan == makespan == fresh.makespan
        assert reused.critical == fresh.critical
        assert reused.latest == fresh.latest

    def test_durations_roundtrip_and_length_check(self):
        stack = _stack("homogeneous")
        node_cost = _node_cost(stack)
        ecd = to_edge_centric(stack.dag)
        kern = CompiledDag.from_edge_centric(ecd, node_cost)
        durations = {n: cm.t_min for n, cm in node_cost.items()}
        arr = kern.durations_array(durations)
        assert kern.durations_dict(arr) == durations
        with pytest.raises(ValueError):
            kern.makespan(arr[:-1])

    def test_kernel_cached_per_cost_mapping(self):
        stack = _stack("homogeneous")
        node_cost = _node_cost(stack)
        ecd = to_edge_centric(stack.dag)
        first = compiled_kernel(ecd, node_cost)
        assert compiled_kernel(ecd, node_cost) is first
        other_cost = dict(node_cost)
        assert compiled_kernel(ecd, other_cost) is not first

    def test_baked_bounds_require_cost_models(self):
        stack = _stack("homogeneous")
        node_cost = _node_cost(stack)
        ecd = to_edge_centric(stack.dag)
        bare = CompiledDag.from_edge_centric(ecd)
        assert bare.t_min is None
        from repro.exceptions import OptimizationError

        costs = [node_cost[c] for c in range(bare.num_comps)]
        dur = bare.durations_array(
            {n: cm.t_max for n, cm in node_cost.items()}
        )
        with pytest.raises(OptimizationError):
            next_schedule_flat(bare, dur, costs, 1e-3)


class TestCostTable:
    def test_entries_match_direct_calls(self):
        stack = _stack("homogeneous")
        node_cost = _node_cost(stack)
        costs = [node_cost[c] for c in range(len(node_cost))]
        tau = 1e-3
        table = CostTable(costs, tau)
        for comp, cm in enumerate(costs):
            t = cm.t_max
            entry = table.entry(comp, t)
            assert entry == (
                cm.can_speed_up(t, tau), cm.can_slow_down(t, tau),
                cm.speedup_cost(t, tau), cm.slowdown_gain(t, tau),
            )
            assert table.entry(comp, t) is entry  # memoized


def _random_bounded_instance(rng):
    n = rng.randint(2, 8)
    edges = []
    for _ in range(rng.randint(1, 16)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        ub = rng.uniform(0.5, 20.0)
        lb = rng.uniform(0.0, ub) if rng.random() < 0.4 else 0.0
        edges.append(BoundedEdge(u, v, lb, ub))
    return n, edges


class TestFlowArena:
    def test_solve_matches_seed_reference_solver(self):
        rng = random.Random(99)
        arena = FlowArena()
        checked = 0
        for _ in range(120):
            n, edges = _random_bounded_instance(rng)
            if not edges:
                continue
            s, t = 0, n - 1
            try:
                reference = max_flow_with_lower_bounds_reference(
                    n, edges, s, t
                )
                ref_err = None
            except Exception as exc:  # InfeasibleFlowError
                reference, ref_err = None, exc
            try:
                ours = max_flow_with_lower_bounds(n, edges, s, t,
                                                  arena=arena)
                our_err = None
            except Exception as exc:
                ours, our_err = None, exc
            if ref_err is not None:
                assert our_err is not None
                assert getattr(our_err, "violating_set", None) == \
                    getattr(ref_err, "violating_set", None)
                continue
            checked += 1
            assert ours.max_flow == reference.max_flow
            assert ours.flows == reference.flows
            assert ours.source_side == reference.source_side
        assert checked > 20  # the generator produced real instances

    def test_arena_reuse_across_sizes_is_clean(self):
        arena = FlowArena()
        big = [BoundedEdge(0, 1, 0.0, 5.0), BoundedEdge(1, 2, 0.0, 3.0),
               BoundedEdge(2, 3, 0.0, 7.0)]
        small = [BoundedEdge(0, 1, 0.0, 2.0)]
        first = max_flow_with_lower_bounds(4, big, 0, 3, arena=arena)
        tiny = max_flow_with_lower_bounds(2, small, 0, 1, arena=arena)
        again = max_flow_with_lower_bounds(4, big, 0, 3, arena=arena)
        assert tiny.max_flow == pytest.approx(2.0)
        assert first.max_flow == again.max_flow == pytest.approx(3.0)
        assert first.flows == again.flows
        assert first.source_side == again.source_side

    def test_arena_max_flow_matches_dinic(self):
        rng = random.Random(5)
        arena = FlowArena()
        for _ in range(60):
            n = rng.randint(2, 9)
            arcs = []
            for _ in range(rng.randint(1, 20)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    arcs.append((u, v, rng.uniform(0.1, 30.0)))
            if not arcs:
                continue
            net = FlowNetwork(n)
            arena.reset(n)
            for u, v, c in arcs:
                net.add_edge(u, v, c)
                arena.add_edge(u, v, c)
            expected = Dinic(net).max_flow(0, n - 1)
            assert arena.max_flow(0, n - 1) == expected
            # and the final-BFS level mask equals the reference residual
            # reachability
            assert {i for i in range(n) if arena.level_mask()[i]} == \
                net.reachable_from(0)

    def test_level_mask_matches_reachable_mask(self):
        arena = FlowArena()
        arena.reset(4)
        arena.add_edge(0, 1, 1.0)
        arena.add_edge(1, 2, 0.5)
        arena.add_edge(2, 3, 1.0)
        arena.max_flow(0, 3)
        assert arena.level_mask() == arena.reachable_mask(0)

    def test_need_flows_false_skips_flow_extraction(self):
        edges = [BoundedEdge(0, 1, 1.0, 4.0), BoundedEdge(1, 2, 0.0, 4.0)]
        flow, flows, mask = solve_bounded_arrays(
            3, [0, 1], [1, 2], [1.0, 0.0], [4.0, 4.0], 0, 2,
            need_flows=False,
        )
        assert flows is None and flow == 0.0
        full = max_flow_with_lower_bounds(3, edges, 0, 2)
        assert {n for n in range(3) if mask[n]} == full.source_side


class TestSlowPathSwitch:
    def test_env_selects_oracle(self, monkeypatch):
        from repro.core.nextschedule import slow_path_enabled

        monkeypatch.delenv("REPRO_SLOW_PATH", raising=False)
        assert not slow_path_enabled()
        monkeypatch.setenv("REPRO_SLOW_PATH", "0")
        assert not slow_path_enabled()
        monkeypatch.setenv("REPRO_SLOW_PATH", "1")
        assert slow_path_enabled()


class TestPlanReportTimings:
    def test_perseus_report_carries_timings(self):
        planner = Planner()
        report = planner.plan(SPECS["homogeneous"])
        assert report.timings is not None
        assert report.timings["kernel"] == "flat"
        assert "timings" not in report.to_dict()

    def test_frontier_free_strategy_has_none(self):
        planner = Planner()
        report = planner.plan(SPECS["homogeneous"].replace(strategy="max-freq"))
        assert report.timings is None
