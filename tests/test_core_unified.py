"""Unified straggler prescription: T_opt = min(T*, T') and Figure 3 cases."""

import pytest

from repro.core.schedule import make_schedule, realize_frequencies
from repro.core.costmodel import build_cost_models
from repro.core.unified import (
    classify_straggler,
    energy_optimal_iteration_time,
    select_schedule,
)
from repro.exceptions import OptimizationError, ScheduleError


class TestEquationTwo:
    def test_no_straggler_selects_t_min(self, small_optimizer):
        frontier = small_optimizer.frontier
        assert energy_optimal_iteration_time(frontier, None) == frontier.t_min
        assert select_schedule(frontier, None) is frontier.points[0]

    def test_moderate_straggler_uses_slack(self, small_optimizer):
        """Figure 3b: T_min < T' <= T* -> run at T'."""
        frontier = small_optimizer.frontier
        t_prime = (frontier.t_min + frontier.t_star) / 2
        assert energy_optimal_iteration_time(frontier, t_prime) == pytest.approx(
            t_prime
        )
        sched = select_schedule(frontier, t_prime)
        assert frontier.t_min < sched.iteration_time <= t_prime + 1e-9

    def test_extreme_straggler_capped_at_t_star(self, small_optimizer):
        """Figure 3c: T' > T* -> never slow past the min-energy point."""
        frontier = small_optimizer.frontier
        t_prime = frontier.t_star * 2
        assert energy_optimal_iteration_time(frontier, t_prime) == pytest.approx(
            frontier.t_star
        )
        assert select_schedule(frontier, t_prime) is frontier.points[-1]

    def test_faster_than_t_min_floored(self, small_optimizer):
        frontier = small_optimizer.frontier
        assert energy_optimal_iteration_time(
            frontier, frontier.t_min / 2
        ) == pytest.approx(frontier.t_min)

    def test_rejects_nonpositive(self, small_optimizer):
        with pytest.raises(OptimizationError):
            energy_optimal_iteration_time(small_optimizer.frontier, -1.0)

    def test_deeper_straggler_never_costs_more(self, small_optimizer):
        """Energy at T_opt is non-increasing in T' (frontier monotone)."""
        frontier = small_optimizer.frontier
        prev = float("inf")
        for factor in (1.0, 1.05, 1.1, 1.2, 1.3, 1.5, 2.0):
            sched = select_schedule(frontier, frontier.t_min * factor)
            assert sched.effective_energy <= prev + 1e-9
            prev = sched.effective_energy


class TestClassification:
    def test_three_cases(self, small_optimizer):
        frontier = small_optimizer.frontier
        assert classify_straggler(frontier, None).name == "no-straggler"
        mid = (frontier.t_min + frontier.t_star) / 2
        assert classify_straggler(frontier, mid).name == "moderate-straggler"
        assert (
            classify_straggler(frontier, frontier.t_star * 1.5).name
            == "extreme-straggler"
        )


class TestScheduleArtifacts:
    def test_realized_frequencies_never_slower_than_plan(
        self, small_dag, small_profile
    ):
        """Algorithm 2 line 8: realized time <= planned time, per node."""
        cms = build_cost_models(small_profile)
        mid = {
            n: (cms[small_dag.nodes[n].op_key].t_min
                + cms[small_dag.nodes[n].op_key].t_max) / 2
            for n in small_dag.nodes
        }
        freqs = realize_frequencies(small_dag, mid, cms)
        for n, f in freqs.items():
            op = small_profile.get(small_dag.nodes[n].op_key)
            assert op.at_freq(f).time_s <= mid[n] + 1e-9

    def test_total_energy_accounting(self, small_dag, small_profile):
        """Eq. 3: waiting for a straggler adds P_blocking * N * (T' - T)."""
        cms = build_cost_models(small_profile)
        fastest = {n: cms[small_dag.nodes[n].op_key].t_min for n in small_dag.nodes}
        sched = make_schedule(small_dag, fastest, cms)
        t = sched.iteration_time
        e_self = sched.total_energy(4, small_profile.p_blocking_w)
        e_wait = sched.total_energy(4, small_profile.p_blocking_w, sync_time=t * 1.2)
        assert e_wait - e_self == pytest.approx(
            small_profile.p_blocking_w * 4 * 0.2 * t, rel=1e-6
        )

    def test_sync_before_end_rejected(self, small_dag, small_profile):
        cms = build_cost_models(small_profile)
        fastest = {n: cms[small_dag.nodes[n].op_key].t_min for n in small_dag.nodes}
        sched = make_schedule(small_dag, fastest, cms)
        with pytest.raises(ScheduleError):
            sched.total_energy(4, 95.0, sync_time=sched.iteration_time / 2)

    def test_missing_duration_rejected(self, small_dag, small_profile):
        cms = build_cost_models(small_profile)
        with pytest.raises(ScheduleError):
            make_schedule(small_dag, {0: 1.0}, cms)
