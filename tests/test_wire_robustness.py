"""Wire-format robustness: non-finite scalars, unicode tenants,
version skew, and the full error-envelope taxonomy.

The daemon's bit-identity guarantee is only as strong as the wire
codecs' worst case, so this module feeds them the corners: every
NaN/±inf combination a scalar row can hold (round-tripped through
*strict* JSON -- no ``NaN``/``Infinity`` literals on the wire),
tenant ids that cannot travel in an HTTP header, payloads from the
wrong wire version, and one envelope per :class:`ReproError` subclass
in the live tree.
"""

from __future__ import annotations

import itertools
import json
import math

import pytest

from repro.api import PlanSpec, Planner
from repro.api.planner import PlanReport
from repro.api.spec import SPEC_FORMAT_VERSION
from repro.exceptions import (
    QuotaExceeded,
    ReproError,
    ServiceError,
    ServiceUnavailable,
)
from repro.service import PlanningDaemon, ServiceClient
from repro.service.wire import (
    REPORT_WIRE_VERSION,
    error_from_wire,
    error_kinds,
    error_to_wire,
    report_from_wire,
    report_to_wire,
    reports_equal,
    spec_from_wire,
)

TINY = dict(gpu="a100", stages=2, microbatches=2, freq_stride=24)


def tiny_spec(model="gpt3-xl", **overrides):
    merged = dict(TINY)
    merged.update(overrides)
    return PlanSpec(model, **merged)


def synthetic_report(it, en, bt, be, error=None) -> PlanReport:
    return PlanReport(
        spec=tiny_spec(),
        strategy="perseus",
        iteration_time_s=it,
        energy_j=en,
        baseline_time_s=bt,
        baseline_energy_j=be,
        plan={0: 1410, 1: 1200},
        error=error,
    )


def bit_same(x: float, y: float) -> bool:
    """NaN==NaN, +inf!=-inf, 0.25==0.25 -- scalar bit identity."""
    if math.isnan(x) or math.isnan(y):
        return math.isnan(x) and math.isnan(y)
    return x == y and math.copysign(1.0, x) == math.copysign(1.0, y)


# ------------------------------------------------------------- scalar corners
NASTY = (1.25, float("nan"), float("inf"), float("-inf"), 1e308, 5e-324)


class TestNonFiniteRoundTrip:
    @pytest.mark.parametrize("values", [
        # every pairing of one nasty value against a sane row, plus the
        # all-nasty diagonal -- 25 combos, all through strict JSON
        *itertools.product(NASTY[:5], [2.5]),
        *((v, v) for v in NASTY),
    ])
    def test_scalar_pair_round_trips_bit_exactly(self, values):
        scalar, other = values
        report = synthetic_report(scalar, other, other, scalar,
                                  error="synthetic row")
        payload = report_to_wire(report)

        def reject(_):
            raise AssertionError("non-strict JSON constant on the wire")

        # The wire payload must survive *strict* JSON: no NaN/Infinity
        # literals, ever (they would break non-Python peers).
        text = json.dumps(payload, allow_nan=False)
        back = report_from_wire(json.loads(text, parse_constant=reject))
        assert reports_equal(report, back)
        for name in ("iteration_time_s", "energy_j",
                     "baseline_time_s", "baseline_energy_j"):
            assert bit_same(getattr(report, name), getattr(back, name))

    def test_infinities_use_the_side_channel_nan_stays_null(self):
        report = synthetic_report(float("inf"), float("nan"),
                                  float("-inf"), 3.5, error="x")
        payload = report_to_wire(report)
        assert payload["nonfinite"] == {"iteration_time_s": "inf",
                                        "baseline_time_s": "-inf"}
        assert payload["row"]["iteration_time_s"] is None
        assert payload["row"]["energy_j"] is None  # NaN needs no channel

    def test_finite_reports_have_no_side_channel(self):
        payload = report_to_wire(Planner().plan(tiny_spec()))
        assert "nonfinite" not in payload

    def test_real_error_row_round_trips_through_daemon(self):
        planner = Planner()
        row = planner.sweep([tiny_spec(model="no-such-model")],
                            errors="report")[0]
        back = report_from_wire(
            json.loads(json.dumps(report_to_wire(row), allow_nan=False)))
        assert reports_equal(row, back)
        assert math.isnan(back.energy_j)


# ------------------------------------------------------------- version skew
class TestVersionSkew:
    def test_wrong_report_version_rejected_loudly(self):
        payload = report_to_wire(synthetic_report(1.0, 2.0, 3.0, 4.0))
        payload["version"] = REPORT_WIRE_VERSION + 1
        with pytest.raises(ServiceError, match="version"):
            report_from_wire(payload)
        payload.pop("version")
        with pytest.raises(ServiceError, match="version"):
            report_from_wire(payload)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ServiceError, match="plan_report"):
            report_from_wire({"kind": "plan_spec", "version": 1})
        with pytest.raises(ServiceError):
            report_from_wire("not even a dict")

    def test_v1_spec_payload_plans_identically_over_the_wire(self):
        spec = tiny_spec()
        payload_v1 = dict(spec.to_dict(), version=1)
        assert SPEC_FORMAT_VERSION != 1  # the skew is real
        assert spec_from_wire(payload_v1) == spec
        with PlanningDaemon(planner=Planner(), port=0) as daemon:
            client = ServiceClient(daemon.url, tenant="team-a")
            remote = client.call("plan", {"spec": payload_v1})
        assert reports_equal(report_from_wire(remote),
                             Planner().plan(spec))

    def test_bare_spec_payload_is_stamped(self):
        spec = spec_from_wire({"model": "gpt3-xl", "gpu": "a100",
                               "stages": 2, "microbatches": 2})
        assert spec.model == "gpt3-xl"


# ------------------------------------------------------------ unicode tenants
class TestUnicodeTenants:
    @pytest.mark.parametrize("tenant", [
        "équipe-α",          # not latin-1-safe: must travel in the body
        "café",              # latin-1-safe but non-ascii: header path
        "租户-0",             # CJK
    ])
    def test_unicode_tenant_round_trips_over_http(self, tenant):
        with PlanningDaemon(planner=Planner(), port=0) as daemon:
            client = ServiceClient(daemon.url, tenant=tenant)
            assert client.ping()["tenant"] == tenant
            # Tenancy really keys on the full unicode name: jobs are
            # invisible to an ascii-mangled sibling.
            client.register_spec("job", tiny_spec())
            assert client.jobs() == ["job"]
            other = ServiceClient(daemon.url, tenant="ascii-tenant")
            assert other.jobs() == []


# -------------------------------------------------------------- error taxonomy
class TestErrorEnvelopes:
    def test_every_repro_error_subclass_re_raises_as_itself(self):
        kinds = error_kinds()
        assert "StoreError" in kinds          # defined outside exceptions.py
        assert "SerializationError" in kinds
        assert len(kinds) > 15
        for kind, cls in kinds.items():
            err = error_from_wire({"kind": kind,
                                   "message": f"remote {kind}",
                                   "retry_after_s": 1.5})
            assert type(err) is cls, kind
            assert f"remote {kind}" in str(err)
            assert isinstance(err, ReproError)

    def test_round_trip_through_to_wire(self):
        for kind, cls in error_kinds().items():
            back = error_from_wire(error_to_wire(cls(f"boom {kind}")))
            assert type(back) is cls

    def test_retry_hints_survive(self):
        for cls in (QuotaExceeded, ServiceUnavailable):
            back = error_from_wire(error_to_wire(
                cls("wait", retry_after_s=2.5)))
            assert type(back) is cls
            assert back.retry_after_s == 2.5

    def test_unknown_kind_degrades_to_service_error(self):
        err = error_from_wire({"kind": "FromTheFuture", "message": "hi"})
        assert type(err) is ServiceError
        assert "FromTheFuture" in str(err)

    def test_late_defined_subclasses_are_not_missed(self):
        class PopUpError(ServiceError):
            pass

        try:
            err = error_from_wire({"kind": "PopUpError", "message": "x"})
            assert type(err) is PopUpError
        finally:
            pass  # test-local class; the registry walk is live, no cleanup
