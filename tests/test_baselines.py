"""Baselines: EnvPipe, ZeusGlobal, ZeusPerStage vs Perseus (§6.2, §6.4)."""

import pytest

from repro.baselines.envpipe import envpipe_plan, run_envpipe
from repro.baselines.static import (
    potential_savings,
    run_max_frequency,
    run_min_energy,
)
from repro.baselines.zeus_global import global_plan, zeus_global_frontier
from repro.baselines.zeus_perstage import zeus_per_stage_frontier
from repro.sim.executor import execute_frequency_plan


class TestStatic:
    def test_potential_savings_positive_with_slowdown(self, small_dag, small_profile):
        savings, slowdown = potential_savings(small_dag, small_profile)
        assert 0.05 < savings < 0.5
        assert slowdown > 1.05

    def test_paper_band_a100(self, small_dag, small_profile):
        """§2.4: A100 upper bound averages ~16%."""
        savings, _ = potential_savings(small_dag, small_profile)
        assert 0.10 < savings < 0.30


class TestEnvPipe:
    def test_plan_covers_all_nodes(self, small_dag, small_profile):
        plan = envpipe_plan(small_dag, small_profile)
        assert set(plan) == set(small_dag.nodes)

    def test_last_stage_at_max_clock(self, small_dag, small_profile):
        plan = envpipe_plan(small_dag, small_profile)
        last = small_dag.num_stages - 1
        for n, ins in small_dag.nodes.items():
            if ins.stage == last:
                op = small_profile.get(ins.op_key)
                assert plan[n] == op.fastest.freq_mhz

    def test_outer_frame_at_max_clock(self, small_dag, small_profile):
        plan = envpipe_plan(small_dag, small_profile)
        for n, ins in small_dag.nodes.items():
            if ins.kind.value == "forward" and ins.microbatch == 0:
                op = small_profile.get(ins.op_key)
                assert plan[n] == op.fastest.freq_mhz

    def test_saves_energy_with_bounded_slowdown(self, small_dag, small_profile):
        base = run_max_frequency(small_dag, small_profile)
        env = run_envpipe(small_dag, small_profile)
        assert env.total_energy() < base.total_energy()
        assert env.iteration_time <= base.iteration_time * 1.10

    def test_perseus_saves_at_least_as_much(self, small_optimizer, small_dag,
                                            small_profile):
        """§6.2: Perseus is a superset of EnvPipe's point solution."""
        base = run_max_frequency(small_dag, small_profile)
        env = run_envpipe(small_dag, small_profile)
        perseus = execute_frequency_plan(
            small_dag,
            small_optimizer.schedule_for_straggler(None).frequencies,
            small_profile,
        )
        # compare at equal-ish time: perseus must not slow down
        assert perseus.iteration_time <= base.iteration_time * 1.005
        assert perseus.total_energy() <= env.total_energy() * 1.05

    def test_no_straggler_adaptation(self, small_dag, small_profile):
        """EnvPipe's plan is fixed regardless of stragglers."""
        plan1 = envpipe_plan(small_dag, small_profile)
        plan2 = envpipe_plan(small_dag, small_profile)
        assert plan1 == plan2


class TestZeusGlobal:
    def test_frontier_is_pareto(self, small_dag, small_profile):
        points = zeus_global_frontier(small_dag, small_profile, freq_stride=2)
        assert len(points) >= 3
        times = [p.iteration_time for p in points]
        energies = [p.total_energy() for p in points]
        assert times == sorted(times)
        assert all(a > b for a, b in zip(energies, energies[1:]))

    def test_global_plan_uniform(self, small_dag, small_profile):
        plan = global_plan(small_dag, small_profile, 900)
        freqs = set(plan.values())
        assert len(freqs) <= 2  # per-op ladders may clamp differently

    def test_fastest_point_is_max_clock(self, small_dag, small_profile):
        points = zeus_global_frontier(small_dag, small_profile, freq_stride=2)
        base = run_max_frequency(small_dag, small_profile)
        assert points[0].iteration_time == pytest.approx(
            base.iteration_time, rel=1e-6
        )


class TestZeusPerStage:
    def test_frontier_is_pareto(self, small_dag, small_profile):
        points = zeus_per_stage_frontier(small_dag, small_profile, freq_stride=2)
        assert len(points) >= 2
        times = [p.iteration_time for p in points]
        assert times == sorted(times)

    def test_balances_forward_times(self, small_dag, small_profile):
        points = zeus_per_stage_frontier(small_dag, small_profile, freq_stride=2)
        # pick a mid-frontier point; per-stage fwd times must be closer to
        # the target than at max clocks
        mid = points[len(points) // 2]
        fwd_times = []
        for s in range(small_dag.num_stages):
            node = next(
                n for n, i in small_dag.nodes.items()
                if i.stage == s and i.kind.value == "forward"
            )
            op = small_profile.get((s, "forward"))
            fwd_times.append(op.at_freq(mid.plan[node]).time_s)
        base = [
            small_profile.get((s, "forward")).fastest.time_s
            for s in range(small_dag.num_stages)
        ]
        assert max(fwd_times) / min(fwd_times) <= max(base) / min(base) + 1e-9


class TestDominance:
    def test_perseus_pareto_dominates_zeus(self, small_optimizer, small_dag,
                                           small_profile):
        """Figure 9: Perseus dominates both Zeus baselines."""
        frontier = small_optimizer.frontier
        for points in (
            zeus_global_frontier(small_dag, small_profile, freq_stride=2),
            zeus_per_stage_frontier(small_dag, small_profile, freq_stride=2),
        ):
            for bp in points:
                ours = frontier.schedule_for(bp.iteration_time * 1.0001)
                perseus_exec = execute_frequency_plan(
                    small_dag, ours.frequencies, small_profile
                )
                sync = max(perseus_exec.iteration_time, bp.iteration_time)
                assert perseus_exec.total_energy(sync_time=sync) <= (
                    bp.total_energy(sync_time=sync) * 1.03
                ), f"Zeus point at t={bp.iteration_time} beats Perseus"
