"""Replica fleet: store-level single-flight, failover client, chaos.

Three layers, increasingly real:

* ``TestStoreFlight`` drives the lease protocol in-process (two
  :class:`StoreFlight` instances over one directory stand in for two
  daemons) through every transition: claim, warm, follower, stale-lease
  takeover, heartbeat extension, clock-skew spurious takeover, leader
  failure, wait timeout.
* ``TestReplicaClientFailover`` points a :class:`ReplicaClient` at
  dead ports, a canned-500 server and a fault-injecting TCP proxy
  (``tests/chaos.py``) to pin down exactly which failures rotate and
  which re-raise.
* ``TestMultiProcessSingleFlight`` is the issue's acceptance scenario
  with real ``python -m repro serve`` subprocesses: a 16-request cold
  herd over 4 unique specs against 2 daemons does exactly 4 expensive
  materializations fleet-wide (asserted from the summed ``/metrics``
  planner-work counters), and a leader SIGKILLed mid-materialization is
  taken over by the surviving replica with a bit-identical report.
"""

from __future__ import annotations

import re
import threading
import time

import pytest

from chaos import (
    CannedHTTPServer,
    ChaosProxy,
    free_port,
    kill_leader_on_claim,
    make_stale_claim,
    slow_materialize_env,
)
from repro.api import PlanSpec, Planner
from repro.exceptions import ServiceError, ServiceUnavailable
from repro.service import (
    PlanningDaemon,
    ReplicaClient,
    ReplicaSet,
    ServiceClient,
    StoreFlight,
    reports_equal,
    sticky_index,
)
from repro.service.replica import FOLLOWER, LEADER, TAKEOVER, WARM

TINY = dict(gpu="a100", stages=2, microbatches=2, freq_stride=24)


def tiny_spec(model="gpt3-xl", **overrides):
    merged = dict(TINY)
    merged.update(overrides)
    return PlanSpec(model, **merged)


def tenant_on(replica: int, count: int = 2, prefix: str = "team") -> str:
    """A tenant name whose sticky route lands on ``replica``."""
    for i in range(10_000):
        name = f"{prefix}-{i}"
        if sticky_index(name, count) == replica:
            return name
    raise AssertionError("no tenant found -- sticky hash broken")


_WORK_RE = re.compile(
    r'^repro_planner_work_total\{stage="(\w+)"\} (\d+)$', re.MULTILINE)
_STORE_ROLE_RE = re.compile(
    r'^repro_service_store_flights_total\{outcome="(\w+)"\} (\d+)$',
    re.MULTILINE)


def fleet_work(metrics_by_url, stage: str) -> int:
    """Sum one planner-work stage across every replica's ``/metrics``."""
    total = 0
    for text in metrics_by_url.values():
        for found_stage, count in _WORK_RE.findall(text):
            if found_stage == stage:
                total += int(count)
    return total


def fleet_store_roles(metrics_by_url) -> dict:
    roles = {}
    for text in metrics_by_url.values():
        for role, count in _STORE_ROLE_RE.findall(text):
            roles[role] = roles.get(role, 0) + int(count)
    return roles


# ------------------------------------------------------------- lease protocol
class TestStoreFlight:
    def expensive(self, root, log, tag="artifact"):
        """An idempotent fn with the planner's cost profile: expensive
        when the shared artifact is missing, a cheap read once the
        leader has persisted it."""
        import os

        path = os.path.join(str(root), tag)

        def fn():
            if not os.path.exists(path):
                log.append("expensive")
                time.sleep(0.05)  # hold the lease long enough to race
                with open(path, "w") as fp:
                    fp.write("artifact-bytes")
            with open(path) as fp:
                return fp.read()
        return fn

    def test_exactly_once_across_instances(self, tmp_path):
        flights = [StoreFlight(tmp_path, owner=f"proc-{i}",
                               lease_timeout_s=5.0) for i in range(2)]
        log, results = [], []
        barrier = threading.Barrier(6)

        def worker(i):
            barrier.wait()
            results.append(flights[i % 2].do(
                "k", self.expensive(tmp_path, log)))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert log == ["expensive"]  # one cold run fleet-wide
        roles = sorted(role for _, role in results)
        assert roles.count(LEADER) == 1
        assert set(roles) <= {LEADER, FOLLOWER, WARM}
        assert all(value == "artifact-bytes" for value, _ in results)

    def test_warm_fast_path_after_landing(self, tmp_path):
        flight = StoreFlight(tmp_path, lease_timeout_s=5.0)
        log = []
        fn = self.expensive(tmp_path, log)
        assert flight.do("k", fn)[1] == LEADER
        value, role = flight.do("k", fn)
        assert (value, role) == ("artifact-bytes", WARM)
        assert log == ["expensive"]
        assert flight.claim_of("k") is None  # no claim was even tried

    def test_stale_lease_from_crashed_process_is_seized(self, tmp_path):
        make_stale_claim(str(tmp_path), "k", age_s=3600.0)
        flight = StoreFlight(tmp_path, lease_timeout_s=5.0)
        log = []
        value, role = flight.do("k", self.expensive(tmp_path, log))
        assert role == TAKEOVER
        assert value == "artifact-bytes"
        assert flight.stats["seized_leases"] == 1
        assert log == ["expensive"]

    def test_heartbeat_keeps_long_work_from_being_seized(self, tmp_path):
        # Lease 0.2s, work 1s: without the heartbeat the waiter would
        # seize after 0.2s and duplicate the work.
        leader = StoreFlight(tmp_path, owner="leader", lease_timeout_s=0.2)
        waiter = StoreFlight(tmp_path, owner="waiter", lease_timeout_s=0.2)
        started = threading.Event()
        runs = []

        def slow():
            runs.append(1)
            started.set()
            time.sleep(1.0)
            return "done"

        out = {}

        def lead():
            out["leader"] = leader.do("k", slow)

        t = threading.Thread(target=lead)
        t.start()
        assert started.wait(10.0)
        value, role = waiter.do("k", slow)
        t.join(10.0)
        assert role == FOLLOWER  # waited, did not seize
        assert waiter.stats["seized_leases"] == 0
        assert len(runs) == 2  # follower re-ran fn warm (idempotent)
        assert out["leader"][1] == LEADER

    def test_clock_skew_spurious_takeover_is_safe(self, tmp_path):
        # A waiter whose clock runs 100s fast seizes a perfectly live
        # lease.  The contract makes this duplicate work, not
        # corruption: both complete, with identical values.
        leader = StoreFlight(tmp_path, owner="honest", lease_timeout_s=5.0)
        skewed = StoreFlight(tmp_path, owner="fast-clock",
                             lease_timeout_s=5.0,
                             clock=lambda: time.time() + 100.0)
        started = threading.Event()
        log = []

        def slow_build():
            started.set()
            log.append("expensive")
            time.sleep(0.3)
            return "value"

        out = {}

        def lead():
            out["leader"] = leader.do("k", slow_build)

        t = threading.Thread(target=lead)
        t.start()
        assert started.wait(10.0)
        value, role = skewed.do("k", slow_build)
        t.join(10.0)
        assert role == TAKEOVER
        assert skewed.stats["seized_leases"] == 1
        assert value == "value" and out["leader"][0] == "value"
        assert out["leader"][1] == LEADER
        assert len(log) == 2  # duplicated, by design

    def test_leader_failure_releases_lease_and_propagates(self, tmp_path):
        flight = StoreFlight(tmp_path, lease_timeout_s=5.0)

        def explode():
            raise ServiceError("leader failed")

        with pytest.raises(ServiceError, match="leader failed"):
            flight.do("k", explode)
        assert flight.claim_of("k") is None  # lease released, not stuck
        value, role = flight.do("k", lambda: "recovered")
        assert (value, role) == ("recovered", LEADER)

    def test_wait_timeout_reports_the_holder(self, tmp_path):
        make_stale_claim(str(tmp_path), "k", age_s=0.0, owner="hog")
        flight = StoreFlight(tmp_path, lease_timeout_s=60.0,
                             wait_timeout_s=0.2, poll_interval_s=0.01)
        with pytest.raises(ServiceError, match="hog"):
            flight.do("k", lambda: "never")

    def test_unsafe_keys_are_hashed_to_filenames(self, tmp_path):
        flight = StoreFlight(tmp_path, lease_timeout_s=5.0)
        value, role = flight.do("spec/../weird key é", lambda: 42)
        assert (value, role) == (42, LEADER)
        import os
        names = os.listdir(flight.flights_dir)
        assert all(re.fullmatch(r"[0-9a-f]{64}\.done", n) for n in names)


# ------------------------------------------------------------- sticky routing
class TestStickyRouting:
    def test_deterministic_and_in_range(self):
        for count in (1, 2, 3, 7):
            for tenant in ("team-a", "team-b", "équipe-α"):
                index = sticky_index(tenant, count)
                assert 0 <= index < count
                assert index == sticky_index(tenant, count)

    def test_spreads_tenants(self):
        hits = {sticky_index(f"tenant-{i}", 2) for i in range(32)}
        assert hits == {0, 1}

    def test_degenerate_inputs_pin_to_zero(self):
        assert sticky_index(None, 4) == 0
        assert sticky_index("", 4) == 0
        assert sticky_index("anyone", 1) == 0


# ----------------------------------------------------------- failover client
@pytest.fixture()
def store_daemon(tmp_path):
    """A live in-process daemon over a persistent store."""
    with PlanningDaemon(planner=Planner(cache=tmp_path / "store"),
                        port=0) as daemon:
        yield daemon


class TestReplicaClientFailover:
    def test_failover_past_a_dead_replica(self, store_daemon):
        dead = f"http://127.0.0.1:{free_port()}"
        # Sticky-route onto the dead replica so the failover is
        # exercised deterministically, not by hash luck.
        client = ReplicaClient([dead, store_daemon.url],
                               tenant=tenant_on(0), cooldown_s=0.2)
        report = client.plan(tiny_spec())
        assert reports_equal(report, Planner().plan(tiny_spec()))
        assert client.stats["failovers"] >= 1
        assert client.ejected() == [0]

    def test_all_replicas_dead_raises_typed_error(self):
        dead = [f"http://127.0.0.1:{free_port()}" for _ in range(2)]
        client = ReplicaClient(dead, max_attempts=3, cooldown_s=0.05)
        with pytest.raises(ServiceUnavailable, match="replicas unavailable"):
            client.ping()

    def test_application_errors_do_not_rotate(self, store_daemon):
        # Both slots point at the same live daemon: if app errors
        # rotated, the failover counter would tick.
        client = ReplicaClient([store_daemon.url, store_daemon.url],
                               tenant="team-a")
        with pytest.raises(ServiceError, match="unknown method"):
            client.call("frobnicate")
        assert client.stats["failovers"] == 0
        assert client.ejected() == []

    def test_http_500_rotates_to_healthy_replica(self, store_daemon):
        with CannedHTTPServer(status=500) as broken:
            client = ReplicaClient([broken.url, store_daemon.url],
                                   cooldown_s=0.2)
            assert client.ping()["ok"]
            assert client.stats["failovers"] >= 1
            assert 0 in client.ejected()

    def test_mid_response_drop_rotates(self, store_daemon):
        with ChaosProxy(store_daemon.url, mode="drop",
                        drop_after_bytes=20) as proxy:
            client = ReplicaClient([proxy.url, store_daemon.url],
                                   cooldown_s=0.2)
            assert client.ping()["ok"]
            assert client.stats["failovers"] >= 1

    def test_ejection_then_probe_readmission(self, store_daemon):
        proxy = ChaosProxy(store_daemon.url, mode="refuse")
        try:
            client = ReplicaClient([proxy.url], cooldown_s=0.2,
                                   probe_timeout_s=2.0, max_attempts=50)
            with pytest.raises(ServiceUnavailable):
                client.ping()
            assert client.ejected() == [0]
            proxy.mode = "pass"  # the replica "restarts"
            time.sleep(0.25)  # cooldown elapses; probe must readmit
            assert client.ping()["ok"]
            assert client.stats["readmissions"] == 1
            assert client.ejected() == []
        finally:
            proxy.close()

    def test_retries_replay_not_reexecute(self, store_daemon):
        # One idempotency id across attempts: a register_spec retried
        # against a daemon that already ran it replays instead of
        # tripping the duplicate-job error.
        with ChaosProxy(store_daemon.url, mode="drop",
                        drop_after_bytes=20) as proxy:
            # No tenant -> sticky index 0 -> the first attempt goes
            # through the response-dropping proxy.
            client = ReplicaClient([proxy.url, store_daemon.url],
                                   cooldown_s=0.2)
            spec = tiny_spec()
            # The proxy eats the first response *after* the daemon
            # committed the registration; the retry must replay.
            result = client.call("register_spec",
                                 {"job_id": "once", "spec": spec.to_dict()})
            assert result["job_id"] == "once"
            assert client.jobs() == ["once"]

    def test_url_list_forms(self, store_daemon):
        pair = ReplicaClient(f" {store_daemon.url} , {store_daemon.url}")
        assert len(pair.replicas) == 2
        with pytest.raises(ServiceError, match="at least one"):
            ReplicaClient([])

    def test_fleet_metrics_skips_dead_replicas(self, store_daemon):
        dead = f"http://127.0.0.1:{free_port()}"
        client = ReplicaClient([dead, store_daemon.url])
        client.ping()
        texts = client.fleet_metrics()
        assert list(texts) == [store_daemon.url]


# ----------------------------------------- the multi-process acceptance tests
class TestMultiProcessSingleFlight:
    """Real daemon subprocesses sharing one store (the issue headline)."""

    def test_cold_herd_does_exactly_u_materializations(self, tmp_path):
        specs = [tiny_spec(), tiny_spec(model="bert-large"),
                 tiny_spec(model="t5-large"),
                 tiny_spec(stages=4, microbatches=4)]
        clients, unique = 16, len(specs)
        tenants = [tenant_on(0), tenant_on(1)]  # both replicas see load
        with ReplicaSet(2, tmp_path / "store", lease_timeout_s=10.0,
                        # herd size == client threads; the daemon
                        # default (8) would queue half the herd
                        extra_args=["--max-inflight", str(clients)],
                        ) as fleet:
            barrier = threading.Barrier(clients)
            results = [None] * clients
            errors = []

            def worker(i):
                client = fleet.client(tenant=tenants[i % 2])
                barrier.wait()
                try:
                    results[i] = client.plan(specs[i % unique])
                except Exception as exc:
                    errors.append(f"{i}: {type(exc).__name__}: {exc}")

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(300.0)
            assert not errors
            metrics = fleet.client().fleet_metrics()
            assert len(metrics) == 2  # both replicas alive and scraped

        # The acceptance: K=16 cold requests over U=4 specs across 2
        # processes -> exactly U expensive profile runs fleet-wide.
        assert fleet_work(metrics, "profile") == unique
        roles = fleet_store_roles(metrics)
        assert roles.get("leader", 0) + roles.get("takeover", 0) == unique
        assert roles.get("takeover", 0) == 0  # nothing crashed

        reference = Planner()
        for i, report in enumerate(results):
            assert report is not None
            assert reports_equal(report, reference.plan(specs[i % unique]))

    def test_leader_killed_mid_flight_follower_takes_over(self, tmp_path):
        spec = tiny_spec()
        tenant = tenant_on(0)  # sticky-routes to the doomed replica 0
        store = tmp_path / "store"
        with ReplicaSet(
            2, store, lease_timeout_s=1.0,
            # Replica 0 (the future leader) stalls 30s inside its
            # expensive materialization -- plenty of window to die in.
            per_daemon_env={0: slow_materialize_env(30.0)},
        ) as fleet:
            client = fleet.client(tenant=tenant, cooldown_s=0.2)
            out = {}

            def work():
                out["report"] = client.plan(spec)

            t = threading.Thread(target=work)
            t.start()
            victim, claim = kill_leader_on_claim(
                str(store), {fleet.daemons[0].pid: fleet.daemons[0]})
            assert victim is fleet.daemons[0]
            assert claim["pid"] == victim.pid
            t.join(240.0)
            assert "report" in out, "failover plan never completed"
            assert not fleet.daemons[0].alive
            assert fleet.daemons[1].alive
            survivor = ServiceClient(fleet.daemons[1].url)
            text = survivor.metrics_text()

        # The survivor seized the dead leader's lease and finished the
        # work itself -- and its answer is bit-identical to in-process
        # planning (crash-consistency: partial leader state is unseen).
        assert ('repro_service_store_flights_total{outcome="takeover"} 1'
                in text)
        assert reports_equal(out["report"], Planner().plan(spec))
        assert client.stats["failovers"] >= 1

    def test_stale_lease_never_blocks_a_fresh_fleet(self, tmp_path):
        # A crashed fleet leaves a claim behind; a brand-new daemon on
        # the same store must seize it rather than wait forever.
        store = tmp_path / "store"
        store.mkdir()
        from repro.service.coalesce import stack_flight_key
        key = stack_flight_key(tiny_spec())
        make_stale_claim(str(store), key, age_s=3600.0)
        with ReplicaSet(1, store, lease_timeout_s=2.0) as fleet:
            report = fleet.client(tenant="team-a").plan(tiny_spec())
            text = ServiceClient(fleet.daemons[0].url).metrics_text()
        assert ('repro_service_store_flights_total{outcome="takeover"} 1'
                in text)
        assert reports_equal(report, Planner().plan(tiny_spec()))


class TestStoreWatch:
    """Followers watch the flights/ directory digest, not a timer grid.

    A directory's mtime bumps on every entry create/rename/unlink --
    the claim landing, the done-marker publishing, a tombstone sweep
    -- while heartbeat writes only touch an existing file's *content*
    mtime.  The follower loop polls the cheap digest every tick
    (counted in ``stats["watch_polls"]``) but only pays the full
    done-marker + stale-claim check when the digest moved or the
    stale-check interval expired.
    """

    def test_follower_counts_watch_polls(self, tmp_path):
        leader = StoreFlight(tmp_path, owner="leader",
                             lease_timeout_s=5.0, poll_interval_s=0.01)
        follower = StoreFlight(tmp_path, owner="follower",
                               lease_timeout_s=5.0, poll_interval_s=0.01)
        release = threading.Event()
        results = []

        def slow():
            release.wait(10.0)
            return "value"

        lead = threading.Thread(
            target=lambda: results.append(leader.do("k", slow)))
        lead.start()
        deadline = time.monotonic() + 5.0
        while leader.claim_of("k") is None:  # wait for the claim
            assert time.monotonic() < deadline
            time.sleep(0.005)

        follow = threading.Thread(
            target=lambda: results.append(follower.do("k", lambda: "value")))
        follow.start()
        time.sleep(0.15)  # let the follower spin on the digest a while
        release.set()
        lead.join(10.0)
        follow.join(10.0)
        assert sorted(role for _, role in results) == [FOLLOWER, LEADER]
        assert follower.stats["watch_polls"] > 0
        assert leader.stats["watch_polls"] == 0  # leaders never wait

    def test_takeover_path_counts_polls_too(self, tmp_path):
        make_stale_claim(str(tmp_path), "k", age_s=3600.0)
        flight = StoreFlight(tmp_path, lease_timeout_s=5.0,
                             poll_interval_s=0.01)
        value, role = flight.do("k", lambda: "v")
        assert role == TAKEOVER
        assert flight.stats["watch_polls"] >= 1


class _ScriptedTransport(ServiceClient):
    """A ServiceClient whose transport is a scripted list of outcomes."""

    def __init__(self, outcomes):
        super().__init__("http://127.0.0.1:1", timeout_s=1.0)
        self.outcomes = list(outcomes)
        self.seen = []  # (method, request_id) per attempt

    def call(self, method, params=None, request_id=None):
        self.seen.append((method, request_id))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestCallWithRetry:
    def test_retries_transport_errors_with_one_request_id(self):
        client = _ScriptedTransport([
            ServiceUnavailable("down", retry_after_s=0.5),
            ServiceUnavailable("still down"),
            {"ok": True},
        ])
        sleeps = []
        result = client.call_with_retry("ping", sleep=sleeps.append)
        assert result == {"ok": True}
        assert len(client.seen) == 3
        ids = {request_id for _, request_id in client.seen}
        assert len(ids) == 1 and None not in ids  # one idempotency id
        # The first sleep honours the server's retry_after_s floor.
        assert len(sleeps) == 2
        assert sleeps[0] >= 0.5

    def test_domain_errors_never_retry(self):
        client = _ScriptedTransport([ServiceError("bad spec")])
        with pytest.raises(ServiceError, match="bad spec"):
            client.call_with_retry("plan", sleep=lambda s: pytest.fail(
                "slept on a non-retryable error"))
        assert len(client.seen) == 1

    def test_gives_up_after_max_attempts(self):
        client = _ScriptedTransport(
            [ServiceUnavailable(f"down {i}") for i in range(5)])
        with pytest.raises(ServiceUnavailable, match="down 2"):
            client.call_with_retry("ping", max_attempts=3,
                                   sleep=lambda s: None)
        assert len(client.seen) == 3

    def test_deadline_stops_before_the_next_sleep(self):
        client = _ScriptedTransport(
            [ServiceUnavailable("down", retry_after_s=10.0)] * 4)
        fake_now = [0.0]

        def clock():
            return fake_now[0]

        def sleep(s):
            fake_now[0] += s

        with pytest.raises(ServiceUnavailable):
            client.call_with_retry("ping", deadline_s=5.0, sleep=sleep,
                                   clock=clock)
        # The 10s hint would cross the 5s deadline: exactly one attempt.
        assert len(client.seen) == 1

    def test_backoff_is_jittered_and_capped(self):
        client = _ScriptedTransport(
            [ServiceUnavailable("down")] * 4)
        sleeps = []
        rng = __import__("random").Random(7)
        with pytest.raises(ServiceUnavailable):
            client.call_with_retry("ping", max_attempts=4,
                                   base_backoff_s=0.1, max_backoff_s=0.25,
                                   rng=rng, sleep=sleeps.append)
        assert len(sleeps) == 3
        assert all(0.1 <= s <= 0.25 for s in sleeps)

    def test_rejects_zero_attempts(self):
        client = _ScriptedTransport([])
        with pytest.raises(ServiceError, match="max_attempts"):
            client.call_with_retry("ping", max_attempts=0)

    def test_composes_with_replica_failover(self):
        """Each retry attempt runs the subclass's full rotation."""
        rotations = []

        class Fleet(ReplicaClient):
            def call(self, method, params=None, request_id=None):
                rotations.append(request_id)
                if len(rotations) < 2:
                    raise ServiceUnavailable("whole fleet restarting")
                return {"ok": True}

        fleet = Fleet(["http://127.0.0.1:1", "http://127.0.0.1:2"])
        result = fleet.call_with_retry("ping", sleep=lambda s: None)
        assert result == {"ok": True}
        assert len(rotations) == 2
        assert len(set(rotations)) == 1  # one idempotency id end to end
