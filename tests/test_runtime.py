"""Runtime: controller prefetching, client/server lifecycle, engine."""

import pytest

from repro.exceptions import ClientError, ServerError
from repro.gpu.nvml import SimulatedNVML
from repro.gpu.specs import A100_PCIE
from repro.models.registry import build_model
from repro.partition.algorithms import partition_model
from repro.runtime.client import PerseusClient
from repro.runtime.controller import AsyncFrequencyController
from repro.runtime.engine import (
    TrainingEngine,
    TrainingSession,
    profile_p_blocking,
)
from repro.runtime.server import PerseusServer


@pytest.fixture()
def device():
    return SimulatedNVML(A100_PCIE, 1).device(0)


class TestController:
    def test_load_plan_arms_first_clock(self, device):
        ctrl = AsyncFrequencyController(device=device)
        ctrl.load_plan([900, 1200, 600], now=0.0)
        assert device.sm_clock(0.02) == 900

    def test_set_speed_prefetches_next(self, device):
        ctrl = AsyncFrequencyController(device=device)
        ctrl.load_plan([900, 1200, 600], now=0.0)
        nxt = ctrl.set_speed(now=1.0)  # instruction 0 starts
        assert nxt == 1200
        assert device.sm_clock(1.02) == 1200

    def test_end_of_plan_returns_none(self, device):
        ctrl = AsyncFrequencyController(device=device)
        ctrl.load_plan([900], now=0.0)
        assert ctrl.set_speed(now=1.0) is None

    def test_empty_plan_rejected(self, device):
        ctrl = AsyncFrequencyController(device=device)
        with pytest.raises(ClientError):
            ctrl.load_plan([], now=0.0)

    def test_begin_iteration_resets(self, device):
        ctrl = AsyncFrequencyController(device=device)
        ctrl.load_plan([900, 1200], now=0.0)
        ctrl.set_speed(now=1.0)
        ctrl.begin_iteration(now=2.0)
        assert ctrl.current_planned() == (0, 900)


class TestServer:
    def test_register_and_duplicate(self, small_dag):
        server = PerseusServer()
        server.register_job("j", small_dag)
        with pytest.raises(ServerError):
            server.register_job("j", small_dag)

    def test_unknown_job(self):
        server = PerseusServer()
        with pytest.raises(ServerError):
            server.is_ready("nope")

    def test_blocking_characterization(self, small_dag, small_profile):
        server = PerseusServer()
        server.register_job("j", small_dag, tau=0.02)
        server.submit_profile("j", small_profile, blocking=True)
        assert server.is_ready("j")
        frontier = server.frontier_of("j")
        assert frontier.t_min < frontier.t_star

    def test_async_characterization(self, small_dag, small_profile):
        server = PerseusServer()
        server.register_job("j", small_dag, tau=0.02)
        server.submit_profile("j", small_profile, blocking=False)
        frontier = server.wait_ready("j", timeout_s=120.0)
        assert frontier.points

    def test_straggler_lookup(self, small_dag, small_profile):
        server = PerseusServer()
        server.register_job("j", small_dag, tau=0.02)
        server.submit_profile("j", small_profile, blocking=True)
        tmin_sched = server.current_schedule("j")
        server.set_straggler("j", accelerator_id=3, delay_s=0.0, degree=1.2)
        slow_sched = server.current_schedule("j")
        assert slow_sched.iteration_time > tmin_sched.iteration_time
        frontier = server.frontier_of("j")
        assert slow_sched.iteration_time <= 1.2 * frontier.t_min + 1e-6
        # straggler resolved
        server.set_straggler("j", accelerator_id=3, delay_s=0.0, degree=1.0)
        assert (
            server.current_schedule("j").iteration_time
            == tmin_sched.iteration_time
        )

    def test_straggler_validation(self, small_dag):
        server = PerseusServer()
        server.register_job("j", small_dag)
        with pytest.raises(ServerError):
            server.set_straggler("j", 0, 0.0, degree=0.5)
        with pytest.raises(ServerError):
            server.set_straggler("j", 0, -1.0, degree=1.2)


class TestStoreBackedSubmitProfile:
    """The raw client-driven path persists/adopts frontiers like
    ``register_spec``: content-addressed on (profile, DAG shape, tau)
    through the attached planner's cache backend."""

    def test_second_submission_adopts_cached_frontier(
        self, small_dag, small_profile
    ):
        from repro.api import Planner

        planner = Planner()
        server = PerseusServer(planner=planner)
        server.register_job("one", small_dag, tau=0.02)
        server.submit_profile("one", small_profile, blocking=True)
        assert planner.stats["frontier"] == 1
        server.register_job("two", small_dag, tau=0.02)
        server.submit_profile("two", small_profile, blocking=True)
        # Same (profile, dag, tau) content: no second crawl, and the
        # very same frontier object is served for both jobs.
        assert planner.stats["frontier"] == 1
        assert server.frontier_of("two") is server.frontier_of("one")

    def test_different_tau_characterizes_again(
        self, small_dag, small_profile
    ):
        from repro.api import Planner

        planner = Planner()
        server = PerseusServer(planner=planner)
        server.register_job("a", small_dag, tau=0.02)
        server.submit_profile("a", small_profile, blocking=True)
        server.register_job("b", small_dag, tau=0.04)
        server.submit_profile("b", small_profile, blocking=True)
        assert planner.stats["frontier"] == 2

    def test_frontier_persists_across_processes(
        self, tmp_path, small_dag, small_profile
    ):
        from repro.api import Planner

        store = str(tmp_path / "plan-store")
        cold_planner = Planner(cache=store)
        cold = PerseusServer(planner=cold_planner)
        cold.register_job("j", small_dag, tau=0.02)
        cold.submit_profile("j", small_profile, blocking=True)
        assert cold_planner.stats["frontier"] == 1

        # A fresh planner over the same store stands in for a second
        # process: the frontier is adopted from disk, never re-crawled.
        warm_planner = Planner(cache=store)
        warm = PerseusServer(planner=warm_planner)
        warm.register_job("j", small_dag, tau=0.02)
        warm.submit_profile("j", small_profile, blocking=True)
        assert warm_planner.stats["frontier"] == 0
        assert warm_planner.cache.counters.get("disk_hits", 0) >= 1

        a, b = cold.frontier_of("j"), warm.frontier_of("j")
        assert [(p.iteration_time, p.effective_energy) for p in a.points] \
            == [(p.iteration_time, p.effective_energy) for p in b.points]

    def test_key_distinguishes_dag_structure(self, small_profile):
        # Two DAGs with identical shape (stages, microbatches, node
        # count, op keys) but different dependency edges must not share
        # a frontier: the key hashes the full structure.
        from repro.pipeline.dag import build_pipeline_dag
        from repro.pipeline.schedules import schedule_1f1b
        from repro.runtime.server import _Job

        a = build_pipeline_dag(schedule_1f1b(4, 6))
        b = build_pipeline_dag(schedule_1f1b(4, 6))
        extra = sorted(b.nodes)  # add one more dependency edge to b
        b.add_edge(extra[0], extra[-1])
        server = PerseusServer()
        job_a = _Job(job_id="a", dag=a, tau=0.02, profile=small_profile)
        job_b = _Job(job_id="b", dag=b, tau=0.02, profile=small_profile)
        key_a = server._raw_frontier_key(job_a)
        key_b = server._raw_frontier_key(job_b)
        assert key_a != key_b
        # Same structure, same profile, same tau: keys alias.
        job_c = _Job(job_id="c", dag=build_pipeline_dag(schedule_1f1b(4, 6)),
                     tau=0.02, profile=small_profile)
        assert server._raw_frontier_key(job_c) == key_a

    def test_async_path_is_store_backed_too(
        self, tmp_path, small_dag, small_profile
    ):
        from repro.api import Planner

        store = str(tmp_path / "plan-store")
        seed_planner = Planner(cache=store)
        seed = PerseusServer(planner=seed_planner)
        seed.register_job("j", small_dag, tau=0.02)
        seed.submit_profile("j", small_profile, blocking=True)

        adopt_planner = Planner(cache=store)
        server = PerseusServer(planner=adopt_planner)
        server.register_job("j", small_dag, tau=0.02)
        server.submit_profile("j", small_profile, blocking=False)
        frontier = server.wait_ready("j", timeout_s=120.0)
        assert frontier.points
        assert adopt_planner.stats["frontier"] == 0


@pytest.fixture(scope="module")
def engine():
    model = build_model("gpt3-xl", 4)
    part = partition_model(model, 4, A100_PCIE)
    return TrainingEngine(
        model, part, A100_PCIE, num_microbatches=4,
        freq_stride=24, iterations_per_freq=1,
    )


class TestEngine:
    def test_iteration_runs_all_instructions(self, engine):
        stats = engine.run_iteration()
        assert stats.iteration_time > 0
        assert stats.energy_j > 0

    def test_profiling_eventually_completes(self, engine):
        for _ in range(60):
            engine.run_iteration()
            if engine.profiling_done():
                break
        assert engine.profiling_done()
        profile = engine.collect_profile()
        assert set(profile.op_keys()) == {
            (s, k) for s in range(4) for k in ("forward", "backward")
        }
        for op in profile.ops.values():
            assert len(op.measurements) >= 3

    def test_p_blocking_profiled_once_per_model(self):
        p = profile_p_blocking(A100_PCIE)
        assert p == pytest.approx(A100_PCIE.blocking_w)

    def test_straggler_injection_slows_iteration(self):
        model = build_model("gpt3-xl", 4)
        part = partition_model(model, 4, A100_PCIE)
        eng = TrainingEngine(model, part, A100_PCIE, num_microbatches=4,
                             freq_stride=24, iterations_per_freq=1)
        t0 = eng.run_iteration().iteration_time
        eng.set_stage_slowdown(1, 1.4)
        t1 = eng.run_iteration().iteration_time
        # stage 1 is ~1/4 of the critical path; throttling it 1.4x must
        # stretch the iteration noticeably but sub-proportionally
        assert t0 * 1.05 < t1 < t0 * 1.4


class TestSession:
    def test_full_lifecycle(self):
        model = build_model("gpt3-xl", 4)
        part = partition_model(model, 4, A100_PCIE)
        eng = TrainingEngine(model, part, A100_PCIE, num_microbatches=4,
                             freq_stride=24, iterations_per_freq=1)
        session = TrainingSession(engine=eng, server=PerseusServer(), tau=0.02)
        for _ in range(100):
            stats = session.step()
            if stats.phase == "optimized":
                break
        assert stats.phase == "optimized"
        # the first optimized iteration is transitional (stale clocks until
        # the deployed locks apply); assert on the steady state after it
        stats = session.step()
        first = session.history[0]
        assert stats.iteration_time <= first.iteration_time * 1.03
        assert stats.energy_j < first.energy_j * 0.97

    def test_straggler_notification_slows_pipeline(self):
        model = build_model("gpt3-xl", 4)
        part = partition_model(model, 4, A100_PCIE)
        eng = TrainingEngine(model, part, A100_PCIE, num_microbatches=4,
                             freq_stride=24, iterations_per_freq=1)
        session = TrainingSession(engine=eng, server=PerseusServer(), tau=0.02)
        for _ in range(100):
            if session.step().phase == "optimized":
                break
        session.step()  # let the deployed clocks settle
        t_opt = session.history[-1].iteration_time
        e_opt = session.history[-1].energy_j
        session.notify_straggler(accelerator_id=9, delay_s=0.0, degree=1.25)
        session.step()  # transition iteration while new locks apply
        stats = session.step()
        assert stats.iteration_time <= t_opt * 1.25 * 1.03
        assert stats.iteration_time > t_opt * 1.05
        assert stats.energy_j < e_opt
