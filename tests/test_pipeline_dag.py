"""Computation DAG: dependency structure, longest paths, const ops."""

import pytest

from repro.exceptions import GraphError
from repro.pipeline.dag import (
    SINK,
    SOURCE,
    ComputationDag,
    build_pipeline_dag,
    durations_from_op_times,
)
from repro.pipeline.instructions import InstrKind, Instruction
from repro.pipeline.schedules import schedule_1f1b, with_data_loading


@pytest.fixture()
def dag_2x3():
    return build_pipeline_dag(schedule_1f1b(2, 3))


def find(dag, stage, mb, kind):
    for node, ins in dag.nodes.items():
        if ins.stage == stage and ins.microbatch == mb and ins.kind is kind:
            return node
    raise AssertionError("node not found")


class TestStructure:
    def test_node_count(self, dag_2x3):
        assert dag_2x3.num_computations == 2 * 3 * 2  # stages x mb x {F,B}

    def test_forward_flows_downstream(self, dag_2x3):
        f0 = find(dag_2x3, 0, 1, InstrKind.FORWARD)
        f1 = find(dag_2x3, 1, 1, InstrKind.FORWARD)
        assert f1 in dag_2x3.succ[f0]

    def test_backward_flows_upstream(self, dag_2x3):
        b1 = find(dag_2x3, 1, 2, InstrKind.BACKWARD)
        b0 = find(dag_2x3, 0, 2, InstrKind.BACKWARD)
        assert b0 in dag_2x3.succ[b1]

    def test_last_stage_turnaround(self, dag_2x3):
        f = find(dag_2x3, 1, 0, InstrKind.FORWARD)
        b = find(dag_2x3, 1, 0, InstrKind.BACKWARD)
        assert b in dag_2x3.succ[f]

    def test_sequential_within_stage(self, dag_2x3):
        """Each stage runs one instruction at a time, in schedule order."""
        sched = schedule_1f1b(2, 3)
        for s, order in enumerate(sched):
            nodes = [find(dag_2x3, i.stage, i.microbatch, i.kind) for i in order]
            for u, v in zip(nodes, nodes[1:]):
                assert v in dag_2x3.succ[u]

    def test_source_and_sink_connected(self, dag_2x3):
        assert dag_2x3.succ[SOURCE]
        assert dag_2x3.pred[SINK]

    def test_topological_order_complete(self, dag_2x3):
        order = dag_2x3.topological_order()
        assert len(order) == dag_2x3.num_computations + 2
        position = {n: i for i, n in enumerate(order)}
        for u in dag_2x3.succ:
            for v in dag_2x3.succ[u]:
                assert position[u] < position[v]


class TestIterationTime:
    def test_uniform_durations_match_1f1b_formula(self):
        """With all durations 1, 1F1B runs in (M + N - 1) * 2 fwd+bwd slots.

        For uniform fwd=bwd=1: pipeline fill (N-1)*(fwd+bwd... classic
        1F1B makespan = (N - 1 + M) * (t_f + t_b) with balanced stages.
        """
        for n, m in [(2, 3), (4, 6), (3, 5)]:
            dag = build_pipeline_dag(schedule_1f1b(n, m))
            durations = {node: 1.0 for node in dag.nodes}
            assert dag.iteration_time(durations) == pytest.approx(
                (n - 1 + m) * 2.0
            )

    def test_bottleneck_stage_dominates(self):
        dag = build_pipeline_dag(schedule_1f1b(2, 4))
        durations = {}
        for node, ins in dag.nodes.items():
            durations[node] = 5.0 if ins.stage == 1 else 1.0
        t = dag.iteration_time(durations)
        # the slow stage's 8 computations are the bulk of the critical path
        assert t >= 8 * 5.0

    def test_earliest_start_respects_deps(self, dag_2x3):
        durations = {node: 1.0 for node in dag_2x3.nodes}
        starts = dag_2x3.earliest_start_times(durations)
        for u in dag_2x3.nodes:
            for v in dag_2x3.succ[u]:
                if v in dag_2x3.nodes:
                    assert starts[v] >= starts[u] + 1.0 - 1e-12


class TestConstOps:
    def test_dataload_gates_forward(self):
        dag = build_pipeline_dag(with_data_loading(schedule_1f1b(2, 2)))
        loads = [n for n, i in dag.nodes.items() if i.kind is InstrKind.CONST]
        assert len(loads) == 2
        for n in loads:
            ins = dag.nodes[n]
            fwd = find(dag, 0, ins.microbatch, InstrKind.FORWARD)
            assert fwd in dag.succ[n]

    def test_const_ops_lengthen_iteration(self):
        base = build_pipeline_dag(schedule_1f1b(2, 2))
        with_load = build_pipeline_dag(with_data_loading(schedule_1f1b(2, 2)))
        d1 = {n: 1.0 for n in base.nodes}
        d2 = {n: 1.0 for n in with_load.nodes}
        assert with_load.iteration_time(d2) > base.iteration_time(d1)


class TestHelpers:
    def test_durations_from_op_times(self, dag_2x3):
        op_times = {(s, k): 1.0 + s for s in (0, 1) for k in ("forward", "backward")}
        durations = durations_from_op_times(dag_2x3, op_times)
        for node, ins in dag_2x3.nodes.items():
            assert durations[node] == pytest.approx(1.0 + ins.stage)

    def test_missing_op_time_raises(self, dag_2x3):
        with pytest.raises(GraphError):
            durations_from_op_times(dag_2x3, {(0, "forward"): 1.0})

    def test_stage_nodes(self, dag_2x3):
        assert len(dag_2x3.stage_nodes(0)) == 6

    def test_cycle_detection(self):
        dag = ComputationDag()
        a = dag.add_node(Instruction(0, 0, InstrKind.FORWARD))
        b = dag.add_node(Instruction(0, 0, InstrKind.BACKWARD))
        dag.add_edge(a, b)
        dag.add_edge(b, a)
        with pytest.raises(GraphError):
            dag.topological_order()

    def test_self_loop_rejected(self):
        dag = ComputationDag()
        a = dag.add_node(Instruction(0, 0, InstrKind.FORWARD))
        with pytest.raises(GraphError):
            dag.add_edge(a, a)
