"""GPU power/time/energy model: the calibrated DVFS substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.gpu.energy_model import ComputationEnergyModel, WorkProfile
from repro.gpu.power import PowerModel
from repro.gpu.specs import A40, A100_PCIE, get_gpu, list_gpus


@pytest.fixture(scope="module")
def work():
    return WorkProfile(flops=5e12, mem_bytes=2e9)


@pytest.fixture(scope="module")
def model():
    return ComputationEnergyModel(A100_PCIE)


class TestWorkProfile:
    def test_rejects_empty_work(self):
        with pytest.raises(ConfigurationError):
            WorkProfile(flops=0, mem_bytes=0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            WorkProfile(flops=-1, mem_bytes=0)

    def test_scaled(self, work):
        half = work.scaled(0.5)
        assert half.flops == work.flops / 2
        assert half.mem_bytes == work.mem_bytes / 2
        with pytest.raises(ConfigurationError):
            work.scaled(0)

    def test_add_preserves_effective_flops(self):
        a = WorkProfile(flops=1e12, mem_bytes=1e9, compute_efficiency=0.5)
        b = WorkProfile(flops=1e12, mem_bytes=1e9, compute_efficiency=1.0)
        total = a + b
        assert total.flops == 2e12
        assert total.effective_flops == pytest.approx(
            a.effective_flops + b.effective_flops
        )

    def test_efficiency_inflates_effective_flops(self):
        w = WorkProfile(flops=1e12, mem_bytes=0.0, compute_efficiency=0.5)
        assert w.effective_flops == pytest.approx(2e12)


class TestPowerModel:
    def test_power_at_max_is_tdp(self):
        pm = PowerModel(A100_PCIE)
        assert pm.compute_power(A100_PCIE.max_freq) == pytest.approx(
            A100_PCIE.tdp_w
        )

    def test_power_monotone_in_clock(self):
        pm = PowerModel(A100_PCIE)
        powers = [pm.compute_power(f) for f in A100_PCIE.freq]
        assert all(a <= b + 1e-9 for a, b in zip(powers, powers[1:]))

    def test_utilization_scales_dynamic_only(self):
        pm = PowerModel(A100_PCIE)
        full = pm.compute_power(A100_PCIE.max_freq, 1.0)
        half = pm.compute_power(A100_PCIE.max_freq, 0.5)
        floor = A100_PCIE.active_floor_w
        assert half == pytest.approx(floor + (full - floor) / 2)

    def test_rejects_bad_utilization(self):
        pm = PowerModel(A100_PCIE)
        with pytest.raises(ConfigurationError):
            pm.compute_power(1410, 0.0)


class TestEnergyModel:
    def test_duration_decreases_with_clock(self, model, work):
        durs = [model.duration(work, f) for f in A100_PCIE.freq]
        assert all(a >= b - 1e-12 for a, b in zip(durs, durs[1:]))

    def test_duration_deterministic(self, model, work):
        assert model.duration(work, 1005) == model.duration(work, 1005)

    def test_memory_term_clock_independent(self, model):
        w = WorkProfile(flops=1.0, mem_bytes=4e9)
        lo = model.duration(w, A100_PCIE.min_freq)
        hi = model.duration(w, A100_PCIE.max_freq)
        # almost pure memory work: duration barely moves with clock
        assert lo / hi < 1.001

    def test_min_energy_frequency_is_interior(self, model, work):
        """Paper footnote 4: the min-energy clock is not the lowest."""
        f = model.min_energy_frequency(work)
        assert A100_PCIE.min_freq < f < A100_PCIE.max_freq

    def test_calibration_against_figure_11(self, work):
        """Min-energy point near ~1.2x time / ~0.7-0.8x energy (A100)."""
        model = ComputationEnergyModel(A100_PCIE)
        t1, e1 = model.time_energy(work, A100_PCIE.max_freq)
        f_star = model.min_energy_frequency(work)
        t_star, e_star = model.time_energy(work, f_star)
        assert 1.1 < t_star / t1 < 1.4
        assert 0.6 < e_star / e1 < 0.9

    def test_a40_saves_more_than_a100(self, work):
        """§6.2.1: A40's wider clock range yields deeper energy cuts."""
        ratios = {}
        for spec in (A100_PCIE, A40):
            m = ComputationEnergyModel(spec)
            _, e1 = m.time_energy(work, spec.max_freq)
            _, e_star = m.time_energy(work, m.min_energy_frequency(work))
            ratios[spec.name] = e_star / e1
        assert ratios[A40.name] < ratios[A100_PCIE.name]

    def test_effective_min_slower_or_equal_raw_min(self, model, work):
        """Subtracting P_blocking*t never favours a faster clock."""
        raw = model.min_energy_frequency(work)
        eff = model.min_effective_energy_frequency(work)
        assert eff <= raw

    @given(st.integers(min_value=210, max_value=1410))
    def test_energy_is_power_times_time(self, freq):
        model = ComputationEnergyModel(A100_PCIE)
        w = WorkProfile(flops=1e12, mem_bytes=1e8)
        t, e = model.time_energy(w, freq)
        assert e == pytest.approx(model.power(w, freq) * t)


def test_registry_round_trip():
    for name in list_gpus():
        assert get_gpu(name).name.lower() == name


def test_registry_aliases():
    assert get_gpu("a100") is A100_PCIE
    assert get_gpu("A40") is A40
    with pytest.raises(ConfigurationError):
        get_gpu("tpu-v4")
