"""End-to-end integration: public API, cross-module consistency, viz."""

import pytest

import repro
from repro.baselines import max_frequency_plan
from repro.sim import execute_frequency_plan
from repro.viz import power_summary, render_comparison, render_timeline


@pytest.fixture(scope="module")
def plan():
    return repro.plan_pipeline(
        "gpt3-xl", gpu="a100", num_stages=4, num_microbatches=6,
        freq_stride=16,
    )


class TestPublicAPI:
    def test_plan_pipeline_returns_everything(self, plan):
        assert plan.model.params > 1e9
        assert plan.partition.num_stages == 4
        assert plan.frontier.t_min < plan.frontier.t_star
        assert plan.dag.num_microbatches == 6

    def test_version(self):
        assert repro.__version__

    def test_planned_vs_realized_consistency(self, plan):
        """Frontier points replay on the simulator within realization gap."""
        for point in (plan.frontier.points[0], plan.frontier.points[-1]):
            realized = execute_frequency_plan(
                plan.dag, point.frequencies, plan.profile
            )
            # realized clocks are never slower than planned durations
            assert realized.iteration_time <= point.iteration_time * 1.001

    def test_headline_claim(self, plan):
        """The abstract: energy savings with no throughput loss."""
        base = execute_frequency_plan(
            plan.dag, max_frequency_plan(plan.dag, plan.profile), plan.profile
        )
        perseus = execute_frequency_plan(
            plan.dag,
            plan.optimizer.schedule_for_straggler(None).frequencies,
            plan.profile,
        )
        assert perseus.iteration_time <= base.iteration_time * 1.001
        savings = 1 - perseus.total_energy() / base.total_energy()
        assert savings > 0.05
        # and average power draw drops accordingly (§1)
        assert perseus.average_power() < base.average_power()


class TestVisualization:
    def test_render_timeline(self, plan):
        base = execute_frequency_plan(
            plan.dag, max_frequency_plan(plan.dag, plan.profile), plan.profile
        )
        out = render_timeline(base, width=80)
        lines = out.splitlines()
        assert len(lines) == 5  # header + 4 stages
        assert all(line.startswith("S") for line in lines[1:])

    def test_render_comparison_mentions_savings(self, plan):
        base = execute_frequency_plan(
            plan.dag, max_frequency_plan(plan.dag, plan.profile), plan.profile
        )
        opt = execute_frequency_plan(
            plan.dag,
            plan.optimizer.schedule_for_straggler(None).frequencies,
            plan.profile,
        )
        out = render_comparison(base, opt, width=60)
        assert "% saved" in out

    def test_power_summary(self, plan):
        base = execute_frequency_plan(
            plan.dag, max_frequency_plan(plan.dag, plan.profile), plan.profile
        )
        out = power_summary(base)
        assert out.count("\n") == 3
        assert "W" in out


class TestCrossGPU:
    @pytest.mark.parametrize("gpu", ["a100", "a40", "h100", "v100"])
    def test_all_gpus_plan(self, gpu):
        result = repro.plan_pipeline(
            "bert-large", gpu=gpu, num_stages=2, num_microbatches=3,
            freq_stride=24,
        )
        assert result.frontier.t_min < result.frontier.t_star
        times = [p.iteration_time for p in result.frontier.points]
        assert times == sorted(times)

    def test_3d_parallelism(self):
        """§4.4: TP shards profile one GPU per stage and replicate."""
        result = repro.plan_pipeline(
            "gpt3-6.7b", gpu="a40", num_stages=4, num_microbatches=4,
            tensor_parallel=2, freq_stride=24,
        )
        assert result.frontier.t_min < result.frontier.t_star
