"""Unit helpers: conversions, tolerant comparison, clamping."""

import pytest

from repro.units import approx_eq, approx_ge, approx_le, clamp, ms, to_ms


def test_ms_roundtrip():
    assert ms(1500.0) == pytest.approx(1.5)
    assert to_ms(1.5) == pytest.approx(1500.0)
    assert to_ms(ms(42.0)) == pytest.approx(42.0)


def test_approx_le_within_eps():
    assert approx_le(1.0, 1.0)
    assert approx_le(1.0 + 1e-9, 1.0)
    assert not approx_le(1.1, 1.0)


def test_approx_ge_within_eps():
    assert approx_ge(1.0, 1.0)
    assert approx_ge(1.0 - 1e-9, 1.0)
    assert not approx_ge(0.9, 1.0)


def test_approx_eq_symmetric():
    assert approx_eq(1.0, 1.0 + 1e-8)
    assert approx_eq(1.0 + 1e-8, 1.0)
    assert not approx_eq(1.0, 1.001)


def test_clamp_inside_and_outside():
    assert clamp(0.5, 0.0, 1.0) == 0.5
    assert clamp(-1.0, 0.0, 1.0) == 0.0
    assert clamp(2.0, 0.0, 1.0) == 1.0


def test_clamp_rejects_empty_interval():
    with pytest.raises(ValueError):
        clamp(0.5, 1.0, 0.0)
