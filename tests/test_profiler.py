"""Profiler: Pareto filtering, exponential fits, sweep termination."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FitError, ProfilingError
from repro.gpu.energy_model import ComputationEnergyModel, WorkProfile
from repro.gpu.specs import A100_PCIE
from repro.models.registry import build_model
from repro.partition.algorithms import partition_model
from repro.profiler.fit import fit_exponential, fit_quality
from repro.profiler.measurement import Measurement, OpProfile, pareto_filter
from repro.profiler.online import (
    profile_constant_op,
    profile_pipeline,
    sweep_frequencies,
)


def m(freq, t, e):
    return Measurement(freq_mhz=freq, time_s=t, energy_j=e)


class TestParetoFilter:
    def test_removes_dominated(self):
        points = [m(3, 1.0, 10.0), m(2, 2.0, 12.0), m(1, 3.0, 8.0)]
        front = pareto_filter(points)
        assert [p.freq_mhz for p in front] == [3, 1]

    def test_sorted_by_time(self):
        points = [m(1, 3.0, 1.0), m(3, 1.0, 3.0), m(2, 2.0, 2.0)]
        front = pareto_filter(points)
        times = [p.time_s for p in front]
        assert times == sorted(times)

    def test_empty(self):
        assert pareto_filter([]) == []

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=10),
                st.floats(min_value=0.01, max_value=10),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_front_is_mutually_nondominated(self, pts):
        points = [m(i, t, e) for i, (t, e) in enumerate(pts)]
        front = pareto_filter(points)
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    a.time_s <= b.time_s
                    and a.energy_j <= b.energy_j
                    and (a.time_s < b.time_s or a.energy_j < b.energy_j)
                )
                assert not dominates

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=10),
                st.floats(min_value=0.01, max_value=10),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_every_point_dominated_by_front(self, pts):
        points = [m(i, t, e) for i, (t, e) in enumerate(pts)]
        front = pareto_filter(points)
        for p in points:
            assert any(
                f.time_s <= p.time_s + 1e-12 and f.energy_j <= p.energy_j + 1e-9
                for f in front
            )


class TestExponentialFit:
    def test_recovers_exact_exponential(self):
        a, b, c = 5.0, -2.0, 1.0
        pts = [m(i, t, a * math.exp(b * t) + c) for i, t in enumerate(
            [0.5, 0.8, 1.1, 1.5, 2.0]
        )]
        fit = fit_exponential(pts)
        for p in pts:
            assert fit(p.time_s) == pytest.approx(p.energy_j, rel=0.02)
        assert fit_quality(fit, pts) > 0.999

    def test_fit_is_decreasing_and_convex(self):
        pts = [m(i, t, 10 * math.exp(-1.5 * t) + 2) for i, t in enumerate(
            [1.0, 1.3, 1.7, 2.2]
        )]
        fit = fit_exponential(pts)
        assert fit.a > 0 and fit.b < 0
        ts = [1.0 + 0.1 * i for i in range(13)]
        vals = [fit(t) for t in ts]
        assert all(x >= y - 1e-9 for x, y in zip(vals, vals[1:]))
        # convexity: increments shrink in magnitude
        diffs = [x - y for x, y in zip(vals, vals[1:])]
        assert all(d1 >= d2 - 1e-9 for d1, d2 in zip(diffs, diffs[1:]))

    def test_speedup_costs_exceed_slowdown_gains(self):
        pts = [m(i, t, 8 * math.exp(-1.0 * t) + 3) for i, t in enumerate(
            [1.0, 1.5, 2.0, 2.5]
        )]
        fit = fit_exponential(pts)
        t, tau = 1.7, 0.1
        assert fit.speedup_cost(t, tau) >= fit.slowdown_gain(t, tau)

    def test_needs_two_points(self):
        with pytest.raises(FitError):
            fit_exponential([m(0, 1.0, 2.0)])

    def test_real_profile_fits_well(self):
        """Appendix D: the exponential is a natural fit to model data."""
        model = ComputationEnergyModel(A100_PCIE)
        work = WorkProfile(flops=5e12, mem_bytes=1e9)
        pts = pareto_filter(sweep_frequencies(model, work, freq_stride=4))
        fit = fit_exponential(pts)
        assert fit_quality(fit, pts) > 0.95


class TestSweep:
    def test_sweep_starts_at_max_clock(self):
        model = ComputationEnergyModel(A100_PCIE)
        work = WorkProfile(flops=5e12, mem_bytes=1e9)
        ms = sweep_frequencies(model, work, freq_stride=4)
        assert ms[0].freq_mhz == A100_PCIE.max_freq

    def test_sweep_terminates_early(self):
        """§5: profiling stops below the min-energy clock."""
        model = ComputationEnergyModel(A100_PCIE)
        work = WorkProfile(flops=5e12, mem_bytes=1e9)
        ms = sweep_frequencies(model, work)
        assert len(ms) < len(A100_PCIE.freq)
        assert min(ms, key=lambda x: x.energy_j).freq_mhz > ms[-1].freq_mhz

    def test_noise_is_reproducible(self):
        import numpy as np

        model = ComputationEnergyModel(A100_PCIE)
        work = WorkProfile(flops=5e12, mem_bytes=1e9)
        a = sweep_frequencies(model, work, freq_stride=8, noise=0.02,
                              rng=np.random.default_rng(7))
        b = sweep_frequencies(model, work, freq_stride=8, noise=0.02,
                              rng=np.random.default_rng(7))
        assert a == b


class TestPipelineProfile:
    def test_profile_covers_all_ops(self):
        model = build_model("gpt3-xl", 2)
        part = partition_model(model, 4, A100_PCIE)
        profile = profile_pipeline(model, part, A100_PCIE, freq_stride=16)
        keys = set(profile.op_keys())
        assert {(s, k) for s in range(4) for k in ("forward", "backward")} == keys

    def test_constant_op_registration(self):
        model = build_model("gpt3-xl", 2)
        part = partition_model(model, 4, A100_PCIE)
        profile = profile_pipeline(model, part, A100_PCIE, freq_stride=16)
        profile_constant_op(profile, 0, "dataload", duration_s=0.02)
        op = profile.get((0, "const", "dataload"))
        assert op.fixed
        assert len(op.measurements) == 1

    def test_frequency_for_time_never_slower(self):
        model = build_model("gpt3-xl", 2)
        part = partition_model(model, 4, A100_PCIE)
        profile = profile_pipeline(model, part, A100_PCIE, freq_stride=16)
        op = profile.get((0, "forward"))
        fastest = op.fastest
        slowest = max(op.pareto(), key=lambda x: x.time_s)
        mid = (fastest.time_s + slowest.time_s) / 2
        chosen = op.frequency_for_time(mid)
        assert chosen.time_s <= mid + 1e-9
        # asking for an impossible time falls back to fastest
        assert op.frequency_for_time(fastest.time_s / 2) == fastest

    def test_validation_requires_p_blocking(self):
        from repro.profiler.measurement import PipelineProfile

        profile = PipelineProfile(p_blocking_w=0.0)
        with pytest.raises(ProfilingError):
            profile.validate()
