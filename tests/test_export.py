"""CSV export helpers."""

import csv
import io

import pytest

from repro.experiments.export import (
    export_frontier,
    export_straggler_sweep,
    export_timeline,
    frontier_series,
)
from repro.sim.executor import execute_frequency_plan, max_frequency_plan


def test_frontier_series_matches_points(small_optimizer):
    series = frontier_series(small_optimizer.frontier)
    assert len(series) == len(small_optimizer.frontier.points)
    times = [t for t, _, _ in series]
    assert times == sorted(times)


def test_export_frontier_csv(small_optimizer):
    buf = io.StringIO()
    n = export_frontier(buf, small_optimizer.frontier)
    buf.seek(0)
    rows = list(csv.reader(buf))
    assert rows[0] == ["method", "iteration_time_s", "compute_energy_j",
                       "effective_energy_j"]
    assert len(rows) == n + 1
    assert all(r[0] == "perseus" for r in rows[1:])


def test_export_timeline_covers_all_stages(small_dag, small_profile):
    execution = execute_frequency_plan(
        small_dag, max_frequency_plan(small_dag, small_profile), small_profile
    )
    buf = io.StringIO()
    export_timeline(buf, execution)
    buf.seek(0)
    rows = list(csv.reader(buf))[1:]
    stages = {int(r[0]) for r in rows}
    assert stages == {0, 1, 2, 3}
    # segments tile the horizon per stage
    for s in stages:
        segs = [(float(r[3]), float(r[4])) for r in rows if int(r[0]) == s]
        for (a0, a1), (b0, b1) in zip(segs, segs[1:]):
            assert b0 == pytest.approx(a1)


def test_export_straggler_sweep_validates_lengths():
    buf = io.StringIO()
    n = export_straggler_sweep(
        buf, [1.1, 1.2], {"Perseus": [10.0, 12.0], "EnvPipe": [8.0, 7.0]}
    )
    assert n == 4
    with pytest.raises(ValueError):
        export_straggler_sweep(io.StringIO(), [1.1], {"Perseus": [1.0, 2.0]})
