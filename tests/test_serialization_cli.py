"""Serialization round-trips and the CLI."""

import io
import json

import pytest

from repro.cli import main
from repro.core.serialization import (
    SerializationError,
    frontier_from_dict,
    frontier_to_dict,
    load_json,
    profile_from_dict,
    profile_to_dict,
    save_json,
)


class TestProfileRoundTrip:
    def test_round_trip_preserves_measurements(self, small_profile):
        payload = profile_to_dict(small_profile)
        restored = profile_from_dict(json.loads(json.dumps(payload)))
        assert restored.p_blocking_w == small_profile.p_blocking_w
        assert set(restored.ops) == set(small_profile.ops)
        for op in small_profile.ops:
            assert restored.ops[op].measurements == small_profile.ops[op].measurements

    def test_kind_checked(self, small_profile):
        payload = profile_to_dict(small_profile)
        payload["kind"] = "frontier"
        with pytest.raises(SerializationError):
            profile_from_dict(payload)

    def test_version_checked(self, small_profile):
        payload = profile_to_dict(small_profile)
        payload["version"] = 999
        with pytest.raises(SerializationError):
            profile_from_dict(payload)


class TestFrontierRoundTrip:
    def test_round_trip_preserves_lookup(self, small_optimizer):
        frontier = small_optimizer.frontier
        restored = frontier_from_dict(
            json.loads(json.dumps(frontier_to_dict(frontier)))
        )
        assert restored.t_min == pytest.approx(frontier.t_min)
        assert restored.t_star == pytest.approx(frontier.t_star)
        assert len(restored.points) == len(frontier.points)
        target = (frontier.t_min + frontier.t_star) / 2
        assert restored.schedule_for(target).iteration_time == pytest.approx(
            frontier.schedule_for(target).iteration_time
        )

    def test_frequencies_survive(self, small_optimizer):
        frontier = small_optimizer.frontier
        restored = frontier_from_dict(frontier_to_dict(frontier))
        assert restored.points[0].frequencies == frontier.points[0].frequencies

    def test_save_load_json_dispatch(self, small_optimizer, small_profile):
        for obj in (small_optimizer.frontier, small_profile):
            buf = io.StringIO()
            save_json(obj, buf)
            buf.seek(0)
            restored = load_json(buf)
            assert type(restored).__name__ == type(obj).__name__

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            load_json(io.StringIO('{"kind": "mystery"}'))


class TestCLI:
    def test_models_and_gpus(self, capsys):
        assert main(["models"]) == 0
        assert "gpt3-xl" in capsys.readouterr().out
        assert main(["gpus"]) == 0
        assert "a100-pcie-80g" in capsys.readouterr().out

    def test_plan_and_straggler(self, tmp_path, capsys):
        out = tmp_path / "frontier.json"
        rc = main([
            "plan", "bert-large", "--gpu", "a100", "--stages", "2",
            "--microbatches", "3", "--freq-stride", "24",
            "-o", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "frontier" in text and "intrinsic" in text
        assert out.exists()

        rc = main(["straggler", str(out), "--degrees", "1.1", "1.4"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "degree 1.10" in text and "degree 1.40" in text

    def test_timeline(self, capsys):
        rc = main([
            "timeline", "bert-large", "--stages", "2", "--microbatches", "3",
            "--freq-stride", "24", "--width", "60",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "(a)" in text and "(b)" in text and "S1 |" in text
