"""The ``random-sampler`` bounds strategy: seeded best-of-N sampling."""

import pytest

from repro.api import PlanSpec, Planner, get_strategy, list_strategies
from repro.baselines.sampler import RandomSamplerStrategy
from repro.exceptions import ConfigurationError
from repro.sim.executor import execute_frequency_plan


@pytest.fixture(scope="module")
def sampler_planner():
    return Planner()


@pytest.fixture(scope="module")
def spec():
    return PlanSpec("bert-large", stages=2, microbatches=3, freq_stride=24,
                    strategy="random-sampler")


def test_registered_and_listed():
    assert "random-sampler" in list_strategies()
    assert get_strategy("random-sampler").name == "random-sampler"


def test_plans_are_seed_deterministic(sampler_planner, spec):
    ctx = sampler_planner.context(spec)
    strategy = RandomSamplerStrategy(samples=8, seed=3)
    assert strategy.plan(ctx) == strategy.plan(ctx)
    other_seed = RandomSamplerStrategy(samples=8, seed=4)
    assert strategy.plan(ctx) != other_seed.plan(ctx)


def test_covers_every_node_with_profiled_clocks(sampler_planner, spec):
    stack = sampler_planner.result(spec)
    ctx = sampler_planner.context(spec)
    plan = RandomSamplerStrategy(samples=4, seed=0).plan(ctx)
    assert set(plan) == set(stack.dag.nodes)
    for node, freq in plan.items():
        op_profile = stack.profile.get(stack.dag.nodes[node].op_key)
        assert any(m.freq_mhz == freq for m in op_profile.measurements)


def test_best_of_n_improves_with_more_samples(sampler_planner, spec):
    ctx = sampler_planner.context(spec)
    stack = sampler_planner.result(spec)

    def energy(samples):
        plan = RandomSamplerStrategy(samples=samples, seed=0).plan(ctx)
        return execute_frequency_plan(
            stack.dag, plan, stack.profile
        ).total_energy()

    assert energy(64) <= energy(1)


def test_straggler_target_is_respected_when_met(sampler_planner, spec):
    stack = sampler_planner.result(spec)
    baseline = sampler_planner.baseline_execution(spec)
    target = baseline.iteration_time * 1.5  # generous: samples will meet it
    ctx = sampler_planner.context(spec, straggler_time=target)
    plan = RandomSamplerStrategy(samples=32, seed=0).plan(ctx)
    execution = execute_frequency_plan(stack.dag, plan, stack.profile)
    assert execution.iteration_time <= target + 1e-9


def test_sweep_row_is_a_lower_bound_vs_perseus(sampler_planner, spec):
    rows = sampler_planner.sweep([
        spec, spec.replace(strategy="perseus"),
    ])
    sampled, perseus = rows
    assert sampled.ok and perseus.ok
    # Blind sampling never beats the frontier crawl at equal slowdown
    # tolerance; as a bound it just has to land in the feasible band.
    assert sampled.energy_j > 0
    assert sampled.baseline_energy_j == perseus.baseline_energy_j


def test_invalid_sample_count_rejected():
    with pytest.raises(ConfigurationError):
        RandomSamplerStrategy(samples=0)
