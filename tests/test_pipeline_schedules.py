"""Pipeline schedules: 1F1B structure, GPipe, interleaving, const ops."""

import pytest

from repro.exceptions import ConfigurationError
from repro.pipeline.instructions import InstrKind, Instruction
from repro.pipeline.schedules import (
    schedule_1f1b,
    schedule_gpipe,
    schedule_interleaved_1f1b,
    validate_schedule,
    with_data_loading,
)


def kinds(order):
    return [(i.kind, i.microbatch) for i in order]


class Test1F1B:
    def test_last_stage_alternates(self):
        """Figure 1, S4 row: F1 B1 F2 B2 ..."""
        sched = schedule_1f1b(4, 6)
        expected = []
        for m in range(6):
            expected += [(InstrKind.FORWARD, m), (InstrKind.BACKWARD, m)]
        assert kinds(sched[3]) == expected

    def test_first_stage_warmup_count(self):
        """Figure 1, S1 row: 3 warm-up forwards before the first backward."""
        sched = schedule_1f1b(4, 6)
        first_bwd = next(
            i for i, ins in enumerate(sched[0]) if ins.kind is InstrKind.BACKWARD
        )
        assert first_bwd == 4  # F1 F2 F3 F4 B1

    def test_validates_for_various_sizes(self):
        for n, m in [(1, 1), (2, 3), (4, 6), (8, 16), (4, 2)]:
            sched = schedule_1f1b(n, m)
            validate_schedule(sched, n, m)

    def test_warmup_capped_by_microbatches(self):
        sched = schedule_1f1b(8, 2)
        validate_schedule(sched, 8, 2)
        assert len(sched[0]) == 4  # 2 fwd + 2 bwd

    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            schedule_1f1b(0, 4)
        with pytest.raises(ConfigurationError):
            schedule_1f1b(4, 0)


class TestGPipe:
    def test_all_forwards_then_backwards(self):
        sched = schedule_gpipe(2, 3)
        validate_schedule(sched, 2, 3)
        stage0 = kinds(sched[0])
        assert stage0[:3] == [(InstrKind.FORWARD, m) for m in range(3)]
        assert stage0[3:] == [(InstrKind.BACKWARD, m) for m in range(3)]


class TestInterleaved:
    def test_virtual_stage_count(self):
        sched = schedule_interleaved_1f1b(4, 8, num_chunks=2)
        assert len(sched) == 8  # 4 devices x 2 chunks
        validate_schedule(sched, 8, 8)

    def test_rejects_indivisible(self):
        with pytest.raises(ConfigurationError):
            schedule_interleaved_1f1b(4, 6, num_chunks=2)


class TestDataLoading:
    def test_const_before_each_stage0_forward(self):
        sched = with_data_loading(schedule_1f1b(2, 3))
        stage0 = sched[0]
        for i, ins in enumerate(stage0):
            if ins.kind is InstrKind.FORWARD:
                assert stage0[i - 1].kind is InstrKind.CONST
                assert stage0[i - 1].microbatch == ins.microbatch

    def test_other_stages_untouched(self):
        base = schedule_1f1b(2, 3)
        sched = with_data_loading(base)
        assert sched[1] == base[1]


class TestValidation:
    def test_detects_backward_before_forward(self):
        bad = [[Instruction(0, 0, InstrKind.BACKWARD), Instruction(0, 0, InstrKind.FORWARD)]]
        with pytest.raises(ConfigurationError):
            validate_schedule(bad, 1, 1)

    def test_detects_missing_microbatch(self):
        bad = [[Instruction(0, 0, InstrKind.FORWARD), Instruction(0, 0, InstrKind.BACKWARD)]]
        with pytest.raises(ConfigurationError):
            validate_schedule(bad, 1, 2)

    def test_detects_duplicates(self):
        bad = [
            [
                Instruction(0, 0, InstrKind.FORWARD),
                Instruction(0, 0, InstrKind.FORWARD),
                Instruction(0, 0, InstrKind.BACKWARD),
            ]
        ]
        with pytest.raises(ConfigurationError):
            validate_schedule(bad, 1, 1)


class TestInstruction:
    def test_op_key_shared_across_microbatches(self):
        a = Instruction(2, 0, InstrKind.FORWARD)
        b = Instruction(2, 5, InstrKind.FORWARD)
        assert a.op_key == b.op_key

    def test_const_op_key_includes_label(self):
        a = Instruction(0, 0, InstrKind.CONST, "dataload")
        b = Instruction(0, 0, InstrKind.CONST, "checkpoint")
        assert a.op_key != b.op_key

    def test_short_name(self):
        assert Instruction(1, 4, InstrKind.FORWARD).short_name() == "F5@S2"
        assert Instruction(0, 0, InstrKind.BACKWARD).short_name() == "B1@S1"
