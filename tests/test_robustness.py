"""Robustness and degenerate cases: noise, tiny pipelines, determinism."""

import pytest

from repro.core.frontier import characterize_frontier
from repro.gpu.specs import A100_PCIE
from repro.models.registry import build_model
from repro.partition.algorithms import partition_model
from repro.pipeline.dag import build_pipeline_dag
from repro.pipeline.schedules import schedule_1f1b
from repro.profiler.online import profile_pipeline
from repro.sim.executor import execute_frequency_plan, max_frequency_plan


@pytest.fixture(scope="module")
def model_and_partition():
    model = build_model("gpt3-xl", 2)
    return model, partition_model(model, 2, A100_PCIE)


class TestProfilingNoise:
    """Inaccurate profiles should degrade gracefully, not break planning."""

    @pytest.mark.parametrize("noise", [0.005, 0.02])
    def test_noisy_profile_still_plans(self, model_and_partition, noise):
        model, part = model_and_partition
        profile = profile_pipeline(
            model, part, A100_PCIE, freq_stride=8, noise=noise, seed=11
        )
        dag = build_pipeline_dag(schedule_1f1b(2, 3))
        frontier = characterize_frontier(dag, profile, tau=0.01)
        times = [p.iteration_time for p in frontier.points]
        effs = [p.effective_energy for p in frontier.points]
        assert times == sorted(times)
        assert all(a > b for a, b in zip(effs, effs[1:]))

    def test_noisy_savings_within_band_of_clean(self, model_and_partition):
        model, part = model_and_partition
        dag = build_pipeline_dag(schedule_1f1b(2, 3))

        def savings(noise, seed=3):
            profile = profile_pipeline(
                model, part, A100_PCIE, freq_stride=8, noise=noise, seed=seed
            )
            frontier = characterize_frontier(dag, profile, tau=0.01)
            base = execute_frequency_plan(
                dag, max_frequency_plan(dag, profile), profile
            )
            perseus = execute_frequency_plan(
                dag, frontier.schedule_for(None).frequencies, profile
            )
            return 1 - perseus.total_energy() / base.total_energy()

        clean = savings(0.0)
        noisy = savings(0.01)
        assert abs(clean - noisy) < 0.08

    def test_determinism_without_noise(self, model_and_partition):
        model, part = model_and_partition
        dag = build_pipeline_dag(schedule_1f1b(2, 3))
        results = []
        for _ in range(2):
            profile = profile_pipeline(model, part, A100_PCIE, freq_stride=8)
            frontier = characterize_frontier(dag, profile, tau=0.01)
            results.append(
                [(p.iteration_time, p.effective_energy) for p in frontier.points]
            )
        assert results[0] == results[1]


class TestDegenerateConfigurations:
    def test_single_stage_single_microbatch(self):
        """N=1, M=1 degenerates to Zeus's single-GPU problem: the frontier
        is exactly the computation's own Pareto curve."""
        model = build_model("bert-large", 4)
        part = partition_model(model, 1, A100_PCIE)
        profile = profile_pipeline(model, part, A100_PCIE, freq_stride=8)
        dag = build_pipeline_dag(schedule_1f1b(1, 1))
        frontier = characterize_frontier(dag, profile, tau=0.002)
        assert frontier.t_min < frontier.t_star
        # at T*, the two computations sit at their min-energy durations
        tstar = frontier.min_energy_schedule
        for n in dag.nodes:
            op = profile.get(dag.nodes[n].op_key)
            assert tstar.durations[n] == pytest.approx(
                op.min_energy.time_s, rel=1e-6
            )

    def test_single_microbatch_deep_pipeline(self):
        model = build_model("gpt3-xl", 2)
        part = partition_model(model, 4, A100_PCIE)
        profile = profile_pipeline(model, part, A100_PCIE, freq_stride=12)
        dag = build_pipeline_dag(schedule_1f1b(4, 1))
        frontier = characterize_frontier(dag, profile, tau=0.01)
        # M=1: everything is on the single chain -> all critical, frontier
        # still spans the per-computation ranges
        assert frontier.t_star / frontier.t_min > 1.1

    def test_many_stages_few_microbatches(self):
        model = build_model("gpt3-175b", 1)
        part = partition_model(model, 8, A100_PCIE)
        profile = profile_pipeline(model, part, A100_PCIE,
                                   tensor_parallel=8, freq_stride=16)
        dag = build_pipeline_dag(schedule_1f1b(8, 2))
        frontier = characterize_frontier(dag, profile, tau=0.02)
        assert len(frontier.points) > 3


class TestFailureInjection:
    def test_straggler_power_scaling_variants(self, small_dag, small_profile):
        """Throttled GPUs may keep or drop per-computation energy."""
        from repro.sim.datapar import run_with_straggler
        from repro.sim.executor import max_frequency_plan as mfp

        plan = mfp(small_dag, small_profile)
        const_energy = run_with_straggler(
            small_dag, small_profile, plan, None, 2, 1.3,
            straggler_power_scale=1.0,
        )
        hotter = run_with_straggler(
            small_dag, small_profile, plan, None, 2, 1.3,
            straggler_power_scale=1.2,
        )
        assert hotter.total_energy() > const_energy.total_energy()

    def test_extreme_straggler_does_not_break_lookup(self, small_optimizer):
        sched = small_optimizer.schedule_for_straggler(1e9)
        assert sched is small_optimizer.frontier.points[-1]

    def test_mid_characterization_queries_fail_cleanly(self, small_dag):
        from repro.exceptions import ServerError
        from repro.runtime.server import PerseusServer

        server = PerseusServer()
        server.register_job("j", small_dag)
        with pytest.raises(ServerError):
            server.current_schedule("j")
