"""Fleet subsystem: events, power models, traces, policies, simulator."""

import json

import pytest

from repro.api import Planner, PlanSpec
from repro.core.frontier import Frontier
from repro.core.schedule import EnergySchedule
from repro.exceptions import ConfigurationError, SimulationError
from repro.fleet import (
    ARRIVAL,
    AllocationContext,
    Event,
    EventQueue,
    FleetJob,
    FleetSimulator,
    FleetTrace,
    JobPowerModel,
    JobView,
    StepTrace,
    StragglerEvent,
    get_policy,
    list_policies,
    register_policy,
    simulate,
    synthetic_trace,
)
from repro.fleet.policy import _REGISTRY as _POLICY_REGISTRY


# ---------------------------------------------------------------------------
# Synthetic frontiers: policies and power models testable without planning
# ---------------------------------------------------------------------------


def make_frontier(points, tau=0.01):
    """points: [(iteration_time, effective_energy), ...]"""
    schedules = [
        EnergySchedule(
            durations={},
            iteration_time=t,
            effective_energy=e,
            compute_energy=e,
            frequencies={},
        )
        for t, e in points
    ]
    return Frontier(points=schedules, tau=tau)


def make_model(points, blocking_w=(100.0, 100.0)):
    return JobPowerModel(make_frontier(points), blocking_w)


#: A steep ladder: slowing 10% saves very little energy.
STEEP = [(1.0, 1000.0), (1.1, 995.0), (1.2, 992.0)]
#: A shallow ladder: slowing 10% saves a lot of energy.
SHALLOW = [(1.0, 1000.0), (1.1, 800.0), (1.2, 700.0)]


class TestEventQueue:
    def test_orders_by_time_then_fifo(self):
        q = EventQueue()
        q.push(Event(time_s=2.0, kind=ARRIVAL, job_id="b"))
        q.push(Event(time_s=1.0, kind=ARRIVAL, job_id="a"))
        q.push(Event(time_s=2.0, kind=ARRIVAL, job_id="c"))
        assert q.pop().job_id == "a"
        batch = q.pop_batch()
        assert [e.job_id for e in batch] == ["b", "c"]
        assert not q

    def test_pop_batch_groups_equal_times(self):
        q = EventQueue()
        for jid in ("x", "y"):
            q.push(Event(time_s=5.0, kind=ARRIVAL, job_id=jid))
        q.push(Event(time_s=6.0, kind=ARRIVAL, job_id="z"))
        assert len(q.pop_batch()) == 2
        assert len(q.pop_batch()) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_bad_event_rejected(self):
        with pytest.raises(SimulationError):
            Event(time_s=-1.0, kind=ARRIVAL)
        with pytest.raises(SimulationError):
            Event(time_s=0.0, kind="nope")


class TestStepTrace:
    def test_right_continuous_lookup(self):
        tr = StepTrace.from_pairs([[0.0, 10.0], [5.0, 20.0]])
        assert tr.value_at(0.0) == 10.0
        assert tr.value_at(4.999) == 10.0
        assert tr.value_at(5.0) == 20.0
        assert tr.value_at(100.0) == 20.0
        assert tr.value_at(-1.0) == 10.0  # first value holds before t0

    def test_breakpoints_after(self):
        tr = StepTrace.from_pairs([[0.0, 1.0], [5.0, 2.0], [9.0, 3.0]])
        assert tr.breakpoints_after(0.0) == [5.0, 9.0]
        assert tr.breakpoints_after(5.0) == [9.0]

    def test_round_trip(self):
        tr = StepTrace.diurnal(base=100.0, amplitude=20.0, period_s=60.0,
                               steps=4)
        again = StepTrace.from_json(json.dumps(tr.to_dict()))
        assert again == tr

    def test_diurnal_spans_base_plus_minus_amplitude(self):
        tr = StepTrace.diurnal(base=100.0, amplitude=20.0, period_s=60.0,
                               steps=24)
        assert min(tr.values) >= 80.0
        assert max(tr.values) <= 120.0
        assert min(tr.values) < 85.0 and max(tr.values) > 115.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StepTrace(times=(1.0, 1.0), values=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            StepTrace(times=(0.0,), values=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            StepTrace.from_pairs([])


class TestJobPowerModel:
    def test_power_strictly_decreases_along_ladder(self):
        model = make_model(SHALLOW)
        ladder = model.ladder()
        powers = [p.power_w for p in ladder]
        assert powers == sorted(powers, reverse=True)
        assert len(ladder) == 3

    def test_point_prices_eq3(self):
        model = make_model([(2.0, 500.0)], blocking_w=(50.0, 75.0))
        point = model.point(0)
        assert point.energy_j == pytest.approx(500.0 + 125.0 * 2.0)
        assert point.power_w == pytest.approx(point.energy_j / 2.0)
        assert point.per_gpu_power_w(2) == pytest.approx(point.power_w / 2)

    def test_floor_collapses_fast_points(self):
        model = make_model(SHALLOW)
        ladder = model.ladder(floor_time_s=1.15)
        # Points at 1.0 and 1.1 are faster than the floor; only the
        # cheapest of them (index 1, the schedule_for(T') lookup)
        # survives, floored to 1.15 s.
        assert [p.index for p in ladder] == [1, 2]
        assert ladder[0].iteration_time_s == pytest.approx(1.15)
        assert ladder[1].iteration_time_s == pytest.approx(1.2)

    def test_floor_beyond_frontier_pins_slowest(self):
        model = make_model(SHALLOW)
        ladder = model.ladder(floor_time_s=9.0)
        assert len(ladder) == 1
        assert ladder[0].index == 2
        assert ladder[0].iteration_time_s == pytest.approx(9.0)

    def test_bad_blocking_rejected(self):
        with pytest.raises(ConfigurationError):
            make_model(SHALLOW, blocking_w=())
        with pytest.raises(ConfigurationError):
            make_model(SHALLOW, blocking_w=(100.0, -1.0))


class TestTraces:
    def test_fleet_job_validation(self):
        spec = PlanSpec("gpt3-xl")
        with pytest.raises(ConfigurationError):
            FleetJob(job_id="", spec=spec, iterations=10)
        with pytest.raises(ConfigurationError):
            FleetJob(job_id="a", spec=spec, iterations=0)
        with pytest.raises(ConfigurationError):
            FleetJob(job_id="a", spec=spec, iterations=10, arrival_s=5.0,
                     deadline_s=4.0)

    def test_trace_rejects_duplicates_and_unknown_events(self):
        spec = PlanSpec("gpt3-xl")
        job = FleetJob(job_id="a", spec=spec, iterations=10)
        with pytest.raises(ConfigurationError):
            FleetTrace(jobs=(job, job))
        with pytest.raises(ConfigurationError):
            FleetTrace(jobs=(job,), events=(
                StragglerEvent(time_s=1.0, job_id="ghost", degree=1.2),
            ))

    def test_trace_json_round_trip(self):
        trace = synthetic_trace(["gpt3-xl", "bert-large"], count=3, seed=7,
                                deadline_slack=2.0)
        trace = FleetTrace(jobs=trace.jobs, events=(
            StragglerEvent(time_s=12.0, job_id="job-001", degree=1.25),
        ))
        again = FleetTrace.from_json(trace.to_json())
        assert again == trace

    def test_synthetic_trace_is_seed_deterministic(self):
        a = synthetic_trace(["gpt3-xl"], count=5, seed=3)
        b = synthetic_trace(["gpt3-xl"], count=5, seed=3)
        c = synthetic_trace(["gpt3-xl"], count=5, seed=4)
        assert a == b
        assert a != c

    def test_plan_spec_normalizes_strategy(self):
        job = FleetJob(
            job_id="a", spec=PlanSpec("gpt3-xl", strategy="envpipe"),
            iterations=1,
        )
        assert job.plan_spec.strategy == "perseus"
        assert job.spec.strategy == "envpipe"

    def test_unique_specs_dedupe(self):
        spec = PlanSpec("gpt3-xl")
        trace = FleetTrace(jobs=(
            FleetJob(job_id="a", spec=spec, iterations=1),
            FleetJob(job_id="b", spec=spec, iterations=2),
            FleetJob(job_id="c", spec=spec.replace(stages=2), iterations=3),
        ))
        assert len(trace.unique_specs()) == 2


def views(**ladders):
    return tuple(
        JobView(job_id=name, options=make_model(points).ladder(),
                num_gpus=2)
        for name, points in sorted(ladders.items())
    )


class TestPolicies:
    def test_registry_lists_builtins(self):
        names = list_policies()
        assert {"uncapped", "uniform", "greedy", "waterfill"} <= set(names)
        assert get_policy("waterfill").name == "waterfill"
        with pytest.raises(ConfigurationError):
            get_policy("no-such-policy")

    def test_register_function_policy(self):
        @register_policy("all-slow-test")
        def _all_slow(ctx):
            """Everything at the slowest point."""
            return {j.job_id: len(j.options) - 1 for j in ctx.jobs}

        try:
            policy = get_policy("all-slow-test")
            ctx = AllocationContext(jobs=views(a=STEEP), cap_w=None)
            assert policy.allocate(ctx) == {"a": 2}
            assert "slowest" in policy.description
        finally:
            _POLICY_REGISTRY.pop("all-slow-test", None)

    def test_register_instance_policy(self):
        class Configurable:
            """Pre-configured policy instance."""

            def __init__(self, position):
                self.position = position

            def allocate(self, ctx):
                return {j.job_id: self.position for j in ctx.jobs}

        register_policy("inst-test")(Configurable(position=1))
        try:
            ctx = AllocationContext(jobs=views(a=STEEP), cap_w=None)
            assert get_policy("inst-test").allocate(ctx) == {"a": 1}
        finally:
            _POLICY_REGISTRY.pop("inst-test", None)

    def test_uncapped_ignores_cap(self):
        ctx = AllocationContext(jobs=views(a=STEEP, b=SHALLOW), cap_w=1.0)
        assert get_policy("uncapped").allocate(ctx) == {"a": 0, "b": 0}

    @pytest.mark.parametrize("name", ["uniform", "greedy", "waterfill"])
    def test_policies_fit_feasible_caps(self, name):
        ctx = AllocationContext(jobs=views(a=STEEP, b=SHALLOW), cap_w=2300.0)
        allocation = get_policy(name).allocate(ctx)
        assert ctx.fleet_power(allocation) <= 2300.0 + 1e-9

    @pytest.mark.parametrize("name", ["uniform", "greedy", "waterfill"])
    def test_policies_best_effort_on_infeasible_caps(self, name):
        ctx = AllocationContext(jobs=views(a=STEEP, b=SHALLOW), cap_w=10.0)
        allocation = get_policy(name).allocate(ctx)
        # Nothing fits: every job parks at its slowest point.
        assert allocation == {"a": 2, "b": 2}

    def test_waterfill_slows_the_shallow_job_first(self):
        # One step of shedding suffices; the shallow frontier gives the
        # energy back at ~20x fewer seconds per joule.
        ctx = AllocationContext(jobs=views(a=STEEP, b=SHALLOW), cap_w=2390.0)
        allocation = get_policy("waterfill").allocate(ctx)
        assert allocation["b"] > 0
        assert allocation["a"] == 0

    def test_greedy_slows_the_hungriest_job(self):
        hungry = [(1.0, 2000.0), (1.1, 1990.0), (1.2, 1985.0)]
        modest = [(1.0, 500.0), (1.1, 400.0)]
        ctx = AllocationContext(jobs=views(a=hungry, b=modest), cap_w=2890.0)
        allocation = get_policy("greedy").allocate(ctx)
        assert allocation["a"] > 0

    def test_uniform_caps_every_gpu_equally(self):
        ctx = AllocationContext(jobs=views(a=STEEP, b=SHALLOW), cap_w=2300.0)
        allocation = get_policy("uniform").allocate(ctx)
        jobs = {v.job_id: v for v in ctx.jobs}
        per_gpu = [
            jobs[jid].options[pos].per_gpu_power_w(jobs[jid].num_gpus)
            for jid, pos in allocation.items()
        ]
        # Both jobs respect one shared per-GPU limit: the larger chosen
        # draw is the binding limit and the other lies under it.
        assert max(per_gpu) <= 2300.0 / 4 + 1e-9


# ---------------------------------------------------------------------------
# End-to-end simulation on real (small) planned specs
# ---------------------------------------------------------------------------

SMALL = dict(stages=2, microbatches=3, freq_stride=24)


@pytest.fixture(scope="module")
def fleet_planner():
    return Planner()


@pytest.fixture(scope="module")
def small_trace():
    return FleetTrace(jobs=(
        FleetJob(job_id="alpha", spec=PlanSpec("bert-large", **SMALL),
                 iterations=40),
        FleetJob(job_id="beta", spec=PlanSpec("t5-large", **SMALL),
                 iterations=30, arrival_s=2.0),
        FleetJob(job_id="gamma", spec=PlanSpec("bert-large", **SMALL),
                 iterations=20, arrival_s=4.0),
    ))


class TestSimulator:
    def test_uncapped_runs_at_allmax(self, small_trace, fleet_planner):
        report = simulate(small_trace, policy="uncapped",
                          planner=fleet_planner)
        assert report.cap_violation_s == 0.0
        for record in report.jobs:
            assert record.slowdown_pct == pytest.approx(0.0, abs=1e-9)
            assert record.energy_j == pytest.approx(record.allmax_energy_j)
        assert report.fleet_energy_j == \
            pytest.approx(report.allmax_energy_j)

    def test_capped_run_meets_cap_and_saves_energy(self, small_trace,
                                                   fleet_planner):
        free = simulate(small_trace, policy="uncapped",
                        planner=fleet_planner)
        # A cap that binds while all three jobs overlap.
        peak = max(r.avg_power_w for r in free.jobs) * 2.2
        capped = simulate(small_trace, policy="waterfill", cap_w=peak,
                          planner=fleet_planner)
        assert capped.cap_violation_s == 0.0
        assert capped.fleet_energy_j < free.fleet_energy_j
        assert capped.aggregate_slowdown_pct > 0.0
        assert capped.energy_bloat_pct > 0.0

    def test_report_is_bit_identical_across_runs(self, small_trace,
                                                 fleet_planner):
        kwargs = dict(policy="waterfill", cap_w=2000.0,
                      planner=fleet_planner)
        first = simulate(small_trace, **kwargs).to_json()
        second = simulate(small_trace, **kwargs).to_json()
        assert first == second

    def test_report_identical_across_planner_parallelism(self, small_trace):
        serial = FleetSimulator(small_trace, policy="waterfill",
                                cap_w=2000.0, planner=Planner()).run()
        pooled = FleetSimulator(small_trace, policy="waterfill",
                                cap_w=2000.0, planner=Planner(),
                                plan_jobs=2).run()
        assert serial.to_json() == pooled.to_json()

    def test_report_identical_through_a_persistent_store(self, small_trace,
                                                         tmp_path):
        # Frontiers adopted from disk (a store warmed by a previous
        # planner) must reproduce the in-memory fleet report bit for
        # bit -- the serialization roundtrip is exact.
        store = str(tmp_path / "plan-store")
        fresh = FleetSimulator(small_trace, policy="waterfill",
                               cap_w=2000.0, planner=Planner(cache=store)
                               ).run()
        warm_planner = Planner(cache=store)
        warm = FleetSimulator(small_trace, policy="waterfill",
                              cap_w=2000.0, planner=warm_planner).run()
        assert warm_planner.stats["frontier"] == 0  # adopted, not crawled
        assert fresh.to_json() == warm.to_json()

    def test_straggler_event_slows_and_saves(self, small_trace,
                                             fleet_planner):
        clean = simulate(small_trace, policy="uncapped",
                         planner=fleet_planner)
        straggled = FleetTrace(jobs=small_trace.jobs, events=(
            StragglerEvent(time_s=0.0, job_id="alpha", degree=1.3),
        ))
        report = simulate(straggled, policy="waterfill",
                          planner=fleet_planner)
        alpha = report.job("alpha")
        assert alpha.duration_s > clean.job("alpha").duration_s
        assert alpha.slowdown_pct == pytest.approx(30.0, abs=2.0)
        # Perseus semantics: running at T' is time-free, so the job
        # rides its frontier down and burns less than all-max would.
        assert alpha.energy_j < alpha.allmax_energy_j

    def test_straggler_before_arrival_applies_on_admit(self, small_trace,
                                                       fleet_planner):
        straggled = FleetTrace(jobs=small_trace.jobs, events=(
            StragglerEvent(time_s=1.0, job_id="gamma", degree=1.5),
        ))
        report = simulate(straggled, policy="uncapped",
                          planner=fleet_planner)
        assert report.job("gamma").slowdown_pct == pytest.approx(50.0,
                                                                 abs=3.0)

    def test_deadline_accounting(self, fleet_planner):
        base = PlanSpec("bert-large", **SMALL)
        trace = FleetTrace(jobs=(
            FleetJob(job_id="tight", spec=base, iterations=20,
                     deadline_s=0.001),
            FleetJob(job_id="loose", spec=base, iterations=20,
                     deadline_s=1e6),
        ))
        report = simulate(trace, policy="uncapped", planner=fleet_planner)
        assert report.job("tight").deadline_missed
        assert not report.job("loose").deadline_missed
        assert report.deadline_misses == 1

    def test_carbon_and_cost_accounting(self, small_trace, fleet_planner):
        report = simulate(small_trace, policy="uncapped", carbon=500.0,
                          price=0.25, planner=fleet_planner)
        expected_g = report.fleet_energy_j / 3.6e6 * 500.0
        assert report.carbon_g == pytest.approx(expected_g, rel=1e-9)
        assert report.cost == pytest.approx(
            report.fleet_energy_j / 3.6e6 * 0.25, rel=1e-9)

    def test_cap_trace_breakpoints_drive_reallocation(self, small_trace,
                                                      fleet_planner):
        free = simulate(small_trace, policy="uncapped",
                        planner=fleet_planner)
        tight = max(r.avg_power_w for r in free.jobs) * 2.2
        cap = StepTrace.from_pairs([[0.0, 1e9], [3.0, tight]])
        report = simulate(small_trace, policy="waterfill", cap_w=cap,
                          planner=fleet_planner)
        assert report.cap_violation_s == 0.0
        assert report.fleet_energy_j < free.fleet_energy_j

    def test_trace_breakpoints_beyond_fleet_do_not_stretch_makespan(
        self, small_trace, fleet_planner
    ):
        free = simulate(small_trace, policy="uncapped",
                        planner=fleet_planner)
        # A 24h-style cap curve whose breakpoints vastly outlast the
        # fleet: the makespan is still the last job completion.
        long_cap = StepTrace.from_pairs(
            [[0.0, 1e9], [50_000.0, 1e9], [100_000.0, 1e9]]
        )
        report = simulate(small_trace, policy="uncapped", cap_w=long_cap,
                          planner=fleet_planner)
        assert report.makespan_s == pytest.approx(free.makespan_s)
        assert report.makespan_s == max(r.end_s for r in report.jobs)

    def test_violation_seconds_accrue_when_infeasible(self, small_trace,
                                                      fleet_planner):
        report = simulate(small_trace, policy="waterfill", cap_w=1.0,
                          planner=fleet_planner)
        assert report.cap_violation_s == pytest.approx(report.makespan_s)

    def test_waterfill_beats_uniform_on_mixed_fleet(self, fleet_planner):
        trace = FleetTrace(jobs=(
            FleetJob(job_id="a",
                     spec=PlanSpec("bert-large", gpu="a100", **SMALL),
                     iterations=60),
            FleetJob(job_id="b",
                     spec=PlanSpec("bert-large", gpu="a40", **SMALL),
                     iterations=40),
            FleetJob(job_id="c",
                     spec=PlanSpec("t5-large", gpu="a40", **SMALL),
                     iterations=40),
        ))
        free = simulate(trace, policy="uncapped", planner=fleet_planner)
        cap = sum(r.avg_power_w for r in free.jobs) * 0.88
        uniform = simulate(trace, policy="uniform", cap_w=cap,
                           planner=fleet_planner)
        water = simulate(trace, policy="waterfill", cap_w=cap,
                         planner=fleet_planner)
        assert water.cap_violation_s == 0.0
        assert uniform.cap_violation_s == 0.0
        assert water.fleet_energy_j < uniform.fleet_energy_j
        assert water.aggregate_slowdown_pct <= \
            uniform.aggregate_slowdown_pct + 1e-9

    def test_unique_specs_plan_once(self, small_trace):
        planner = Planner()
        simulate(small_trace, policy="uncapped", planner=planner)
        # alpha and gamma share a spec: two unique stacks, two frontiers.
        assert planner.stats["profile"] == 2
        assert planner.stats["frontier"] == 2

    def test_report_dict_shape(self, small_trace, fleet_planner):
        report = simulate(small_trace, policy="uncapped",
                          planner=fleet_planner)
        doc = report.to_dict()
        assert doc["kind"] == "fleet_report"
        assert len(doc["jobs"]) == 3
        row = doc["jobs"][0]
        assert {"job_id", "energy_j", "slowdown_pct", "deadline_missed",
                "allmax_energy_j"} <= set(row)
        assert doc["aggregate_slowdown_pct"] == \
            pytest.approx(report.aggregate_slowdown_pct)

    def test_bad_policy_rejected(self, small_trace):
        with pytest.raises(ConfigurationError):
            FleetSimulator(small_trace, policy=object())


class TestFleetCli:
    def test_fleet_cli_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fleet.json"
        code = main([
            "fleet", "--count", "2", "--models", "bert-large",
            "--gpus", "a100", "--stages", "2", "--microbatches", "3",
            "--freq-stride", "24", "--iterations", "20",
            "--max-iterations", "30", "--policy", "waterfill",
            "--cap-watts", "800", "--format", "json",
            "-o", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["policy"] == "waterfill"
        assert len(doc["jobs"]) == 2

    def test_fleet_cli_trace_file(self, tmp_path, capsys):
        from repro.cli import main

        trace = synthetic_trace(["bert-large"], count=2, seed=1,
                                iterations=(10, 20), stages=2,
                                microbatches=3, freq_stride=24)
        path = tmp_path / "trace.json"
        path.write_text(trace.to_json())
        assert main(["fleet", "--trace", str(path)]) == 0
        assert "fleet" in capsys.readouterr().out

    def test_fleet_cli_bad_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main(["fleet", "--trace", str(path)]) == 2

    def test_fleet_cli_iterations_lower_bound_alone(self, capsys):
        from repro.cli import main

        # --iterations above the default upper bound must not error:
        # the range clamps to (500, 500).
        code = main([
            "fleet", "--count", "1", "--models", "bert-large",
            "--gpus", "a100", "--stages", "2", "--microbatches", "3",
            "--freq-stride", "24", "--iterations", "500",
        ])
        assert code == 0
        assert "iters" in capsys.readouterr().out

    def test_policies_cli(self, capsys):
        from repro.cli import main

        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "waterfill" in out and "uniform" in out
