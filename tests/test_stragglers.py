"""Straggler models (§2.3): throttling, I/O, heterogeneous pipelines."""

import pytest

from repro.exceptions import SimulationError
from repro.stragglers.injection import (
    HeterogeneousPipeline,
    IOBottleneck,
    ThermalThrottle,
    anticipated_t_prime,
)


class TestThermalThrottle:
    def test_stretches_durations(self):
        throttle = ThermalThrottle(slowdown=1.3)
        out = throttle.distort_durations({0: 1.0, 1: 2.0})
        assert out == {0: pytest.approx(1.3), 1: pytest.approx(2.6)}

    def test_power_scales_inverse(self):
        throttle = ThermalThrottle(slowdown=2.0)
        out = throttle.distort_powers({0: 200.0})
        assert out[0] == pytest.approx(100.0)  # energy per comp preserved

    def test_degree_matches_slowdown(self):
        assert ThermalThrottle(slowdown=1.2).degree == pytest.approx(1.2)

    def test_rejects_speedup(self):
        with pytest.raises(SimulationError):
            ThermalThrottle(slowdown=0.9)


class TestIOBottleneck:
    def test_stalls_iteration(self):
        io = IOBottleneck(stall_factor=4.0)  # paper: up to 4x [54, 83, 89]
        assert io.stalled_iteration_time(2.0) == pytest.approx(8.0)
        assert io.degree == pytest.approx(4.0)

    def test_rejects_negative_stall(self):
        with pytest.raises(SimulationError):
            IOBottleneck(stall_factor=0.5)


class TestHeterogeneous:
    def test_uniform_slowdown(self):
        het = HeterogeneousPipeline(capacity_ratio=8 / 7)
        out = het.distort_durations({0: 7.0})
        assert out[0] == pytest.approx(8.0)

    def test_rejects_bad_ratio(self):
        with pytest.raises(SimulationError):
            HeterogeneousPipeline(capacity_ratio=0.8)


class TestPrescription:
    def test_t_prime(self):
        assert anticipated_t_prime(1.2, 10.0) == pytest.approx(12.0)

    def test_rejects_fast_straggler(self):
        with pytest.raises(SimulationError):
            anticipated_t_prime(0.5, 10.0)
