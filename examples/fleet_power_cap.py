#!/usr/bin/env python
"""Fleet power capping: many training jobs under one power envelope.

Builds a seeded synthetic datacenter trace (a mix of models across A100
and A40 pipelines), then runs it through the discrete-event fleet
simulator under a cluster power cap with each built-in allocation
policy.  The frontier-aware ``waterfill`` policy takes the cap out of
the jobs whose frontiers give energy back most cheaply in time, so it
lands under the cap with both less energy *and* less aggregate
slowdown than uniformly capping every GPU.

Run:  python examples/fleet_power_cap.py
"""

from repro.api import default_planner
from repro.fleet import FleetSimulator, StepTrace, synthetic_trace

#: A cap between the fleet's all-slowest and all-fastest draw, so the
#: policies have real work to do while zero violations stay achievable.
CAP_WATTS = 4000.0


def main() -> None:
    trace = synthetic_trace(
        ["gpt3-xl", "bert-large", "t5-large"],
        count=6,
        seed=0,
        gpus=("a100", "a40"),
        interval_s=5.0,
        iterations=(200, 400),
        freq_stride=8,
    )
    planner = default_planner()  # one planner: every policy reuses the
    # same characterized frontiers, so only the first run plans anything.

    print(f"{len(trace.jobs)} jobs under a {CAP_WATTS:.0f} W cluster cap\n")
    print(f"{'policy':<10} {'energy (J)':>12} {'slowdown':>9} "
          f"{'violation':>10} {'makespan':>9}")
    for policy in ("uncapped", "uniform", "greedy", "waterfill"):
        report = FleetSimulator(
            trace, policy=policy, cap_w=CAP_WATTS, planner=planner
        ).run()
        print(f"{policy:<10} {report.fleet_energy_j:>12.0f} "
              f"{report.aggregate_slowdown_pct:>8.2f}% "
              f"{report.cap_violation_s:>9.1f}s "
              f"{report.makespan_s:>8.1f}s")

    # A time-varying cap works the same way: trace breakpoints become
    # simulator events, and the policy reallocates at each one.
    diurnal = StepTrace.diurnal(base=4400.0, amplitude=700.0,
                                period_s=1200.0, steps=8)
    report = FleetSimulator(trace, policy="waterfill",
                            cap_w=diurnal, planner=planner).run()
    print(f"\ndiurnal cap (3.8-5.1 kW): energy "
          f"{report.fleet_energy_j:.0f} J, violation "
          f"{report.cap_violation_s:.1f} s over {report.makespan_s:.0f} s")


if __name__ == "__main__":
    main()
