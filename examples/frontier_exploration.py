#!/usr/bin/env python
"""Frontier exploration: Perseus vs Zeus baselines (the Figure 9 study).

Characterizes the GPT-3 2.7B / eight-stage / A40 frontier and scans the
two Zeus-derived baselines over the same configuration, printing the
time-energy curves as aligned series plus an ASCII scatter -- who wins
where, and why ZeusPerStage cannot reach the fast end.

Run:  python examples/frontier_exploration.py
"""

from repro.api import PlanSpec, default_planner
from repro.baselines import zeus_global_frontier, zeus_per_stage_frontier
from repro.sim import execute_frequency_plan


def ascii_scatter(series, width=78, height=20):
    """Plot {label: [(x, y), ...]} as a character grid."""
    pts = [(x, y, label[0]) for label, xs in series.items() for x, y in xs]
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x0, x1, y0, y1 = min(xs), max(xs), min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y, ch in pts:
        col = int((x - x0) / (x1 - x0 + 1e-12) * (width - 1))
        row = int((y1 - y) / (y1 - y0 + 1e-12) * (height - 1))
        grid[row][col] = ch
    lines = [f"{y1:9.0f}J |" + "".join(grid[0])]
    lines += ["           |" + "".join(row) for row in grid[1:-1]]
    lines.append(f"{y0:9.0f}J |" + "".join(grid[-1]))
    lines.append("           +" + "-" * width)
    lines.append(f"            {x0:.2f}s{' ' * (width - 14)}{x1:.2f}s")
    return "\n".join(lines)


def main() -> None:
    plan = default_planner().result(PlanSpec(
        "gpt3-2.7b", gpu="a40", stages=8, microbatches=16, freq_stride=6,
    ))
    frontier = plan.frontier

    perseus_pts = []
    step = max(1, len(frontier.points) // 12)
    for point in frontier.points[::step]:
        realized = execute_frequency_plan(
            plan.dag, point.frequencies, plan.profile
        )
        perseus_pts.append((realized.iteration_time, realized.total_energy()))

    zeus_g = [
        (p.iteration_time, p.total_energy())
        for p in zeus_global_frontier(plan.dag, plan.profile, freq_stride=3)
    ]
    zeus_p = [
        (p.iteration_time, p.total_energy())
        for p in zeus_per_stage_frontier(plan.dag, plan.profile, freq_stride=3)
    ]

    print("GPT-3 2.7B, eight-stage pipeline parallelism, A40 (Figure 9b)\n")
    print(ascii_scatter({
        "Perseus": perseus_pts, "Global (Zeus)": zeus_g, "Stage (Zeus)": zeus_p
    }))
    print("\nP = Perseus   G = ZeusGlobal   S = ZeusPerStage")

    t_fast = perseus_pts[0][0]
    print(f"\nAt the default iteration time ({t_fast:.2f}s):")
    print(f"  Perseus       {perseus_pts[0][1]:8.0f} J")
    g_fast = min(zeus_g, key=lambda p: p[0])
    print(f"  ZeusGlobal    {g_fast[1]:8.0f} J (at {g_fast[0]:.2f}s)")
    s_fast = min(zeus_p, key=lambda p: p[0])
    print(f"  ZeusPerStage  {s_fast[1]:8.0f} J (at {s_fast[0]:.2f}s -- cannot "
          "reach the fast end: balancing forwards slows critical backwards)")

    print(f"\nPerseus Pareto-dominates both: it slows only computations off "
          f"the critical path,\nenumerating {len(frontier.points)} schedules "
          f"between T_min={frontier.t_min:.2f}s and T*={frontier.t_star:.2f}s.")


if __name__ == "__main__":
    main()
