#!/usr/bin/env python
"""Large-scale emulation: GPT-3 175B across 2048-8192 GPUs (§6.3).

Reproduces the strong-scaling study: as the GPU count doubles (Table 5),
per-pipeline microbatches halve and intrinsic savings per pipeline grow,
while the job's straggler savings follow Figure 8's rise-then-wane curve.

Run:  python examples/large_scale_emulation.py
"""

from repro.emulation import (
    emulated_breakdown,
    emulated_intrinsic_savings,
    emulated_straggler_savings,
    prepare_emulation,
    t_star_ratio,
    table5_configs,
)
from repro.gpu import A100_SXM

MODEL = "gpt3-175b"
SLOWDOWNS = (1.05, 1.1, 1.2, 1.3, 1.5)


def main() -> None:
    print(f"{MODEL} on A100 SXM, TP8 x PP8, global batch 1536 (Table 5)\n")
    print("GPUs   pipelines  M/pipeline  intrinsic%   T*/T")
    setups = {}
    for cfg in table5_configs():
        if cfg.num_microbatches > 48:
            continue  # the 1024-GPU row takes minutes; see the benchmarks
        setup = prepare_emulation(
            MODEL, A100_SXM, cfg.num_microbatches, freq_stride=8,
            step_target=120,
        )
        setups[cfg.num_pipelines] = (cfg, setup)
        print(f"{cfg.num_gpus:5d}  {cfg.num_pipelines:9d}  "
              f"{cfg.num_microbatches:10d}  "
              f"{emulated_intrinsic_savings(setup):9.2f}  "
              f"{t_star_ratio(setup):6.2f}")

    print("\nOne pipeline throttles; all others slow to T_opt (Figure 8a):")
    header = "pipelines | " + " | ".join(f"T'/T={s}" for s in SLOWDOWNS)
    print(header)
    print("-" * len(header))
    for pipelines, (cfg, setup) in setups.items():
        row = [
            f"{emulated_straggler_savings(setup, pipelines, s):7.1f}%"
            for s in SLOWDOWNS
        ]
        print(f"{pipelines:9d} | " + " | ".join(row))

    print("\nBloat breakdown at 1.2x straggler (Figure 7):")
    for pipelines, (cfg, setup) in setups.items():
        b = emulated_breakdown(setup, pipelines, 1.2)
        print(f"  {cfg.num_gpus:5d} GPUs: intrinsic {b.intrinsic_pct:5.2f}% "
              f"+ extrinsic {b.extrinsic_pct:5.2f}% = {b.total_pct:5.2f}%")

    print("\nNote: Perseus optimizes ONE pipeline and replicates the "
          "schedule across\nall data-parallel replicas (§4.4), which is why "
          "even the 8192-GPU job\nplans in seconds.")


if __name__ == "__main__":
    main()
