#!/usr/bin/env python
"""Mixed-cluster planning: per-stage GPU mixes as first-class specs.

Enumerates every A100/A40 assignment of a 4-stage pipeline with
``mixed_cluster_specs``, plans each mix on one shared planner (per-stage
profiling is memoized by (device, stage work), so 16 mixes cost far
fewer than 16 profiles), then treats the slowest mix as an anticipated
straggler via ``SlowGPUType``.

Run:  python examples/mixed_cluster.py
"""

from repro.api import PlanSpec, default_planner, mixed_cluster_specs
from repro.stragglers import SlowGPUType


def main() -> None:
    base = PlanSpec("gpt3-xl", stages=4, microbatches=6, freq_stride=8)
    planner = default_planner()

    # 1. One spec per GPU assignment, planned over shared caches.
    specs = mixed_cluster_specs(base, ["a100", "a40"])
    rows = planner.sweep(specs)
    rows.sort(key=lambda r: r.iteration_time_s)

    print(f"{'mix':<24} {'time (s)':>9} {'energy (J)':>11} {'savings':>8}")
    for row in rows:
        mix = ",".join(row.spec.gpu_names)
        print(f"{mix:<24} {row.iteration_time_s:>9.4f} "
              f"{row.energy_j:>11.1f} {row.energy_savings_pct:>7.1f}%")
    print(f"\nplanner stats (note profile vs stage_profile sharing): "
          f"{planner.stats}")

    # 2. A slow GPU type is a first-class straggler scenario: the mixed
    #    pipeline is planned natively, and its anticipated degree is what
    #    the infra reports for the job's other, homogeneous pipelines.
    slowest = max(
        (r for r in rows if r.spec.is_heterogeneous),
        key=lambda r: r.iteration_time_s,
    ).spec
    scenario = SlowGPUType.from_spec(slowest, planner=planner)
    print(f"\nslowest mix {scenario.gpu_names} vs all-"
          f"{scenario.reference_gpu}: anticipated straggler degree "
          f"{scenario.degree:.2f}")


if __name__ == "__main__":
    main()
