#!/usr/bin/env python
"""Straggler adaptation: the full Figure-4 lifecycle on the runtime.

Runs the simulated training engine (the Merak substitute) with the Perseus
client/server:

1. in-vivo profiling over the first iterations (client sweeps clocks),
2. asynchronous frontier characterization on the server,
3. deployment of the T_min energy schedule (intrinsic bloat removed),
4. the datacenter notifies a thermal-throttled straggler
   (``set_straggler``, Table 2) -- the server instantly looks up the
   ``T_opt = min(T*, T')`` schedule and re-deploys,
5. the straggler recovers and the pipeline returns to T_min.

Run:  python examples/straggler_adaptation.py
"""

from repro.gpu import A100_PCIE
from repro.models import build_model
from repro.partition import partition_model
from repro.runtime import PerseusServer, TrainingEngine, TrainingSession
from repro.stragglers import ThermalThrottle


def main() -> None:
    model = build_model("gpt3-xl", microbatch_size=4)
    partition = partition_model(model, 4, A100_PCIE)
    engine = TrainingEngine(
        model, partition, A100_PCIE,
        num_microbatches=6,
        freq_stride=12,          # coarser in-vivo sweep for a quick demo
        iterations_per_freq=1,
    )
    session = TrainingSession(engine=engine, server=PerseusServer(), tau=0.01)

    print("phase       iter   time(s)  energy(J)  avg power(W)")

    def show(stats, note=""):
        print(f"{stats.phase:10s}  {stats.index:4d}  {stats.iteration_time:7.3f}"
              f"  {stats.energy_j:9.1f}  {stats.average_power_w / 4:12.1f}  {note}")

    # --- 1-3: profile, characterize, deploy -----------------------------
    while True:
        stats = session.step()
        if stats.index < 3 or stats.phase != "profiling":
            show(stats)
        if stats.phase == "optimized":
            break
    show(session.step(), "steady state with T_min schedule")

    # --- 4: a rack manager anticipates thermal throttling elsewhere -----
    throttle = ThermalThrottle(slowdown=1.2)
    print(f"\n>> datacenter: another pipeline will throttle "
          f"{throttle.degree:.2f}x -> set_straggler(id=7, delay=0, degree=1.2)")
    session.notify_straggler(accelerator_id=7, delay_s=0.0,
                             degree=throttle.degree)
    session.step()  # transition iteration while new clock locks apply
    show(session.step(), "slowed to T_opt = min(T*, T'), energy down")
    show(session.step())

    # --- 5: straggler recovers ------------------------------------------
    print("\n>> datacenter: straggler resolved -> set_straggler(degree=1.0)")
    session.notify_straggler(accelerator_id=7, delay_s=0.0, degree=1.0)
    session.step()
    show(session.step(), "back to T_min schedule")

    frontier = session.server.frontier_of(session.job_id)
    print(f"\nfrontier: T_min={frontier.t_min:.3f}s  T*={frontier.t_star:.3f}s "
          f"({len(frontier.points)} schedules cached for instant lookup)")


if __name__ == "__main__":
    main()
