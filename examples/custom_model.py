#!/usr/bin/env python
"""Bring your own model: plan a custom architecture end to end.

Builds a hand-rolled Mixture-of-Experts-style Transformer variant that is
NOT in the zoo (heavier FFN every other layer), partitions it, registers a
constant-time data-loading operation (§4.4), and plans it with Perseus --
showing the full public API surface a downstream user would touch.

Run:  python examples/custom_model.py
"""

from repro.core import PerseusOptimizer
from repro.gpu import A40, WorkProfile
from repro.models import LayerSpec, ModelSpec
from repro.partition import partition_model
from repro.pipeline import build_pipeline_dag, schedule_1f1b, with_data_loading
from repro.profiler import profile_constant_op, profile_pipeline


def build_moe_ish_model(num_layers=16, hidden=2048, seq=1024, microbatch=4):
    """Alternating dense/wide layers -- deliberately hard to balance."""
    layers = []
    for i in range(num_layers):
        wide = i % 2 == 1
        ffn_mult = 8 if wide else 4  # "expert" layers are 2x heavier
        flops = microbatch * seq * hidden * hidden * (8 + 4 * ffn_mult)
        weight_bytes = hidden * hidden * (4 + 2 * ffn_mult) * 2
        act_bytes = 18 * microbatch * seq * hidden * 2
        layers.append(
            LayerSpec(
                name=f"block.{i}{'-wide' if wide else ''}",
                kind="transformer",
                forward=WorkProfile(
                    flops=flops,
                    mem_bytes=weight_bytes + act_bytes,
                    compute_efficiency=0.55,
                ),
                backward_multiplier=3.0,  # activation recomputation
            )
        )
    return ModelSpec(
        name="moe-ish-4b",
        layers=tuple(layers),
        tail=None,
        params=sum(int(l.forward.mem_bytes // 2) for l in layers),
        microbatch_size=microbatch,
        seq_len=seq,
    )


def main() -> None:
    model = build_moe_ish_model()
    gpu = A40

    # Minimum-imbalance partitioning fights the alternating layer sizes.
    partition = partition_model(model, num_stages=4, gpu=gpu)
    print(f"model:     {model.name}, {model.num_layers} layers")
    print(f"partition: {list(partition.boundaries)} "
          f"(imbalance ratio {partition.ratio:.2f})")

    # Profile each stage over the clock ladder; add a constant-time
    # data-loading op in front of every first-stage forward (§4.4).
    profile = profile_pipeline(model, partition, gpu, freq_stride=6)
    profile_constant_op(profile, stage=0, label="dataload", duration_s=0.015)

    schedule = with_data_loading(schedule_1f1b(4, 8))
    dag = build_pipeline_dag(schedule)

    optimizer = PerseusOptimizer(dag=dag, profile=profile, tau=0.01)
    frontier = optimizer.frontier
    print(f"frontier:  {len(frontier.points)} schedules, "
          f"T_min={frontier.t_min:.3f}s .. T*={frontier.t_star:.3f}s")

    tmin = frontier.min_time_schedule
    tstar = frontier.min_energy_schedule
    e_tmin = tmin.total_energy(4, profile.p_blocking_w)
    e_tstar = tstar.total_energy(4, profile.p_blocking_w)
    print(f"\nT_min schedule: {tmin.iteration_time:.3f}s  {e_tmin:8.0f} J")
    print(f"T*    schedule: {tstar.iteration_time:.3f}s  {e_tstar:8.0f} J "
          f"({1 - e_tstar / e_tmin:.1%} less energy, "
          f"{tstar.iteration_time / tmin.iteration_time - 1:.1%} slower)")

    # The dataload ops have exactly one planned duration (single choice).
    const_nodes = [
        n for n, ins in dag.nodes.items() if ins.kind.value == "const"
    ]
    durations = {tmin.durations[n] for n in const_nodes}
    print(f"\n{len(const_nodes)} constant-time ops planned at a single "
          f"duration: {sorted(durations)[0] * 1e3:.1f} ms each")


if __name__ == "__main__":
    main()
