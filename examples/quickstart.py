#!/usr/bin/env python
"""Quickstart: plan a pipeline and read its time-energy frontier.

Plans GPT-3 1.3B on four simulated A100s (the paper's Figure 1 / Table 3
headline workload), characterizes the time-energy frontier with the
graph-cut optimizer, and compares Perseus's minimum-time energy schedule
against the all-max-frequency default.

Run:  python examples/quickstart.py
"""

from repro import plan_pipeline
from repro.baselines import max_frequency_plan
from repro.sim import execute_frequency_plan
from repro.viz import render_comparison


def main() -> None:
    # 1. One call: build the model, partition stages with minimum
    #    imbalance, profile every stage across the clock ladder, and
    #    characterize the full time-energy frontier.
    plan = plan_pipeline(
        "gpt3-xl",          # GPT-3 1.3B from the model zoo
        gpu="a100",         # A100 PCIe, 210-1410 MHz in 15 MHz steps
        num_stages=4,
        num_microbatches=6,  # drawn to scale like Figure 1
        freq_stride=4,       # profile every 4th clock (60 MHz grid)
    )

    frontier = plan.optimizer.frontier
    print(f"model:        {plan.model.name} ({plan.model.params / 1e9:.1f}B params)")
    print(f"partition:    {list(plan.partition.boundaries)} "
          f"(imbalance ratio {plan.partition.ratio:.2f})")
    print(f"frontier:     {len(frontier.points)} schedules, "
          f"T_min={frontier.t_min:.3f}s .. T*={frontier.t_star:.3f}s")
    print(f"optimizer:    {frontier.steps} graph-cut steps in "
          f"{frontier.optimizer_runtime_s:.2f}s")

    # 2. Execute both plans on the simulator (profiled ground truth).
    baseline = execute_frequency_plan(
        plan.dag, max_frequency_plan(plan.dag, plan.profile), plan.profile
    )
    schedule = plan.optimizer.schedule_for_straggler(None)  # no straggler
    perseus = execute_frequency_plan(
        plan.dag, schedule.frequencies, plan.profile
    )

    saved = 1 - perseus.total_energy() / baseline.total_energy()
    slow = perseus.iteration_time / baseline.iteration_time - 1
    print(f"\nall-max:      {baseline.iteration_time:.3f}s  "
          f"{baseline.total_energy():.0f} J")
    print(f"Perseus:      {perseus.iteration_time:.3f}s  "
          f"{perseus.total_energy():.0f} J  "
          f"({saved:.1%} energy saved, {slow:+.2%} iteration time)")

    # 3. Draw the Figure-1 style timelines.
    print()
    print(render_comparison(baseline, perseus, width=100))


if __name__ == "__main__":
    main()
