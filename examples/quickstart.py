#!/usr/bin/env python
"""Quickstart: one PlanSpec, one Planner, every strategy.

Plans GPT-3 1.3B on four simulated A100s (the paper's Figure 1 / Table 3
headline workload) through the unified planning API: a frozen
:class:`repro.api.PlanSpec` describes the workload, the shared
:class:`repro.api.Planner` runs model -> partition -> profile -> DAG ->
optimize with per-stage memoization, and every registered strategy plans
over the same profile for an apples-to-apples comparison.

Run:  python examples/quickstart.py
"""

from repro.api import PlanSpec, default_planner, list_strategies
from repro.viz import render_comparison


def main() -> None:
    # 1. One spec names the whole planning request; the default strategy
    #    is Perseus's graph-cut frontier planner.
    spec = PlanSpec(
        "gpt3-xl",          # GPT-3 1.3B from the model zoo
        gpu="a100",         # A100 PCIe, 210-1410 MHz in 15 MHz steps
        stages=4,
        microbatches=6,     # drawn to scale like Figure 1
        freq_stride=4,      # profile every 4th clock (60 MHz grid)
    )
    planner = default_planner()

    # 2. The full stack (model, partition, profile, DAG, frontier) --
    #    memoized, so later plans on the same spec reuse every stage.
    stack = planner.result(spec)
    frontier = stack.frontier
    print(f"model:        {stack.model.name} "
          f"({stack.model.params / 1e9:.1f}B params)")
    print(f"partition:    {list(stack.partition.boundaries)} "
          f"(imbalance ratio {stack.partition.ratio:.2f})")
    print(f"frontier:     {len(frontier.points)} schedules, "
          f"T_min={frontier.t_min:.3f}s .. T*={frontier.t_star:.3f}s")
    print(f"optimizer:    {frontier.steps} graph-cut steps in "
          f"{frontier.optimizer_runtime_s:.2f}s")

    # 3. Every registered strategy over the single shared profile.
    print("\nstrategy         iteration   energy    saved")
    for name in list_strategies():
        row = planner.plan(spec.replace(strategy=name))
        print(f"{name:16s} {row.iteration_time_s:7.3f}s  "
              f"{row.energy_j:6.0f} J  {row.energy_savings_pct:+5.1f}%")

    # 4. Draw the Figure-1 style timelines: all-max vs Perseus.  Reports
    #    carry their simulated execution, so nothing is re-simulated.
    perseus = planner.plan(spec)
    print()
    print(render_comparison(planner.baseline_execution(spec),
                            perseus.execution, width=100))


if __name__ == "__main__":
    main()
